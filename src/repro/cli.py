"""Command-line interface for the Optimus-CC reproduction.

Subcommands
-----------
``simulate``
    Simulate one training iteration of a paper-scale model under a named
    Optimus-CC configuration and print iteration time, projected days, and speedup.
``train``
    Run a short functional training probe through the unified 3D-parallel engine
    (pipeline x data x tensor) and print the loss plus measured per-axis traffic.
    The probe is configured by a declarative :class:`repro.plan.ParallelPlan` —
    from ``--plan file.json``, ``--preset name``, or (legacy) ``--config name`` —
    with the ``--dp-*`` flags layered on top as overrides.
``plan``
    Inspect declarative parallel plans: ``show`` a preset or file, ``validate``
    plan files, ``diff`` two plans knob by knob.
``breakdown``
    Print the CPI-stack execution-time breakdown for a model/configuration pair.
``autotune``
    Search the selective-stage-compression operating point for a model within an
    aggressiveness budget (Section 9.4's future-work knob).
``reproduce``
    Run one of the paper's tables/figures (fast functional settings) and print it.
``search``
    Capacity planning: expand a search query into thousands of candidate plans,
    evaluate them through the simulator (pooled workers + on-disk cache), and
    print the ranked Pareto frontier (throughput vs. wire bytes vs. peak memory).
``docs``
    Documentation helpers: ``docs cli`` renders the generated CLI reference
    (``docs/CLI.md``) from the live argparse tree.
``list``
    List the available models, configurations, plan presets, and artefacts.

Example
-------
``python -m repro simulate --model GPT-8.3B --config cb_fe_sc --iterations 230000``
``python -m repro train --preset cb_fe_sc``
``python -m repro plan diff cb_fe examples/plans/cb_fe_sc.json``
``python -m repro search --model GPT-8.3B --gpus 128 --max-memory-gb 40``
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import Callable, Sequence

from repro.core.autotune import SelectiveCompressionAutoTuner
from repro.core.config import EngineCompressionConfig, OptimusCCConfig
from repro.core.framework import OptimusCC
from repro.plan import (
    DP_FIRE_KINDS,
    EXECUTOR_KINDS,
    PLAN_PRESETS,
    SCHEDULE_KINDS,
    Boundary,
    ParallelPlan,
    ResilienceSpec,
)
from repro.models.gpt_configs import (
    GPT_2_5B,
    GPT_8_3B,
    GPT_9_2B,
    GPT_18B,
    GPT_39B,
    GPT_76B,
    GPT_175B,
    PaperModelSpec,
)
from repro.simulator.cost_model import TrainingJob
from repro.utils.tables import Table, format_float

#: Models addressable from the command line.
MODEL_CATALOGUE: dict[str, PaperModelSpec] = {
    spec.name: spec
    for spec in (GPT_2_5B, GPT_8_3B, GPT_9_2B, GPT_18B, GPT_39B, GPT_76B, GPT_175B)
}

#: Named configurations addressable from the command line.
CONFIG_CATALOGUE: dict[str, Callable[[], OptimusCCConfig]] = {
    "baseline": OptimusCCConfig.baseline,
    "cb": OptimusCCConfig.cb,
    "cb_fe": OptimusCCConfig.cb_fe,
    "cb_fe_sc": OptimusCCConfig.cb_fe_sc,
    "naive_dp": OptimusCCConfig.naive_dp,
    "naive_cb": OptimusCCConfig.naive_cb,
    "optimus_topk": OptimusCCConfig.optimus_topk,
}


def _resolve_model(name: str) -> PaperModelSpec:
    if name not in MODEL_CATALOGUE:
        raise SystemExit(
            f"unknown model {name!r}; available: {', '.join(sorted(MODEL_CATALOGUE))}"
        )
    return MODEL_CATALOGUE[name]


def _resolve_config(name: str) -> OptimusCCConfig:
    if name not in CONFIG_CATALOGUE:
        raise SystemExit(
            f"unknown configuration {name!r}; available: {', '.join(sorted(CONFIG_CATALOGUE))}"
        )
    return CONFIG_CATALOGUE[name]()


def _load_plan_file(path: str) -> ParallelPlan:
    """Load and validate one plan JSON file, mapping failures to SystemExit."""
    try:
        return ParallelPlan.load(path)
    except OSError as error:
        raise SystemExit(f"cannot read plan file {path!r}: {error}") from error
    except (ValueError, TypeError, json.JSONDecodeError) as error:
        raise SystemExit(f"invalid plan file {path!r}: {error}") from error


def _resolve_plan(token: str) -> ParallelPlan:
    """Resolve a preset name or a JSON file path into a validated plan."""
    if token in PLAN_PRESETS:
        return ParallelPlan.preset(token)
    if pathlib.Path(token).exists():
        return _load_plan_file(token)
    raise SystemExit(
        f"{token!r} is neither a plan preset ({', '.join(sorted(PLAN_PRESETS))}) "
        "nor an existing plan file"
    )


def _artefact_catalogue() -> dict[str, Callable[[], object]]:
    """Lazy artefact table so that ``list`` stays fast."""
    from repro.experiments.discussion_accelerators import run_accelerator_comparison
    from repro.experiments.fig03_motivation import run_fig03
    from repro.experiments.schedule_compare import run_schedule_comparison
    from repro.experiments.fig09_ppl_curves import run_fig09
    from repro.experiments.fig10_breakdown import run_fig10
    from repro.experiments.fig11_error_independence import run_fig11
    from repro.experiments.fig12_memory import run_fig12
    from repro.experiments.fig13_selective_vs_rank import run_fig13
    from repro.experiments.fig14_config_sensitivity import run_fig14
    from repro.experiments.fig15_throughput import run_fig15
    from repro.experiments.fig16_scalability import run_fig16
    from repro.experiments.table2_pretraining import run_table2
    from repro.experiments.table3_zeroshot import run_table3
    from repro.experiments.table4_lazy_error import run_table4

    return {
        "fig3": run_fig03,
        "table2": run_table2,
        "fig9": run_fig09,
        "table3": run_table3,
        "table4": run_table4,
        "fig10": run_fig10,
        "fig11": run_fig11,
        "fig12": run_fig12,
        "fig13": run_fig13,
        "fig14": run_fig14,
        "fig15": run_fig15,
        "fig16": run_fig16,
        "accelerators": run_accelerator_comparison,
        "schedules": run_schedule_comparison,
    }


# ----------------------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------------------


def command_simulate(arguments: argparse.Namespace) -> int:
    model = _resolve_model(arguments.model)
    job = TrainingJob(model=model)
    table = Table(
        title=f"{model.name}: simulated training on the paper's 128-GPU cluster",
        columns=["Configuration", "Iteration (s)", f"Days/{arguments.iterations // 1000}K", "Speedup"],
    )
    baseline = OptimusCC(OptimusCCConfig.baseline()).simulate_iteration(job)
    names = [arguments.config] if arguments.config != "all" else list(CONFIG_CATALOGUE)
    for name in names:
        timing = OptimusCC(_resolve_config(name)).simulate_iteration(job)
        table.add_row(
            [
                name,
                format_float(timing.iteration_time, 2),
                format_float(timing.days_for(arguments.iterations), 1),
                f"{timing.speedup_over(baseline):+.2%}",
            ]
        )
    print(table.render())
    return 0


def build_train_plan(arguments: argparse.Namespace) -> ParallelPlan:
    """Resolve the ``train`` arguments into one declarative plan.

    Resolution order: ``--plan file.json`` (taken verbatim) or ``--preset name``
    / legacy ``--config name`` (proxy-scaled: the paper ranks are lossless on
    the tiny probe, so they are capped at 2).  Topology flags and the ``--dp-*``
    flags are then layered onto the plan as overrides, so every flag works with
    any base plan.
    """
    if arguments.plan is not None and arguments.preset is not None:
        raise SystemExit("--plan and --preset are mutually exclusive")
    if arguments.config is not None and (
        arguments.plan is not None or arguments.preset is not None
    ):
        raise SystemExit("--config cannot be combined with --plan/--preset")
    if arguments.plan is not None:
        plan = _load_plan_file(arguments.plan)
    elif arguments.preset is not None:
        if arguments.preset not in PLAN_PRESETS:
            raise SystemExit(
                f"unknown plan preset {arguments.preset!r}; "
                f"available: {', '.join(sorted(PLAN_PRESETS))}"
            )
        plan = ParallelPlan.preset(arguments.preset).proxy_scaled()
    else:
        plan = _resolve_config(arguments.config or "cb_fe_sc").as_plan().proxy_scaled()

    topology_overrides = {
        key: value
        for key, value in (
            ("pp", arguments.stages),
            ("dp", arguments.data_parallel),
            ("tp", arguments.tensor_parallel),
        )
        if value is not None
    }
    if topology_overrides:
        try:
            plan = plan.with_topology(**topology_overrides)
        except ValueError as error:
            raise SystemExit(str(error)) from error

    dp_overrides: dict = {}
    if arguments.dp_codec is not None:
        dp_overrides["codec"] = arguments.dp_codec
        if (
            arguments.dp_rank is None
            and arguments.dp_codec == "powersgd"
            and arguments.plan is None
        ):
            # Proxy-scale convention: rescale the paper rank so compression is
            # lossy.  A --plan file is taken verbatim — its rank stands unless
            # --dp-rank overrides it explicitly.
            dp_overrides["rank"] = min(plan.spec(Boundary.DP).rank, 2)
    if arguments.dp_rank is not None:
        dp_overrides["rank"] = arguments.dp_rank
    if arguments.dp_qsgd_bits is not None:
        dp_overrides["bits"] = arguments.dp_qsgd_bits
    if arguments.dp_topk_fraction is not None:
        dp_overrides["fraction"] = arguments.dp_topk_fraction
    if arguments.dp_stage_fraction is not None:
        dp_overrides["stage_fraction"] = arguments.dp_stage_fraction
    if arguments.dp_min_elements is not None:
        dp_overrides["min_elements"] = arguments.dp_min_elements
    if arguments.dp_bucket_kb is not None:
        dp_overrides["bucket_bytes"] = arguments.dp_bucket_kb * 1024
    if dp_overrides:
        try:
            plan = plan.with_boundary(Boundary.DP, **dp_overrides)
        except ValueError as error:
            raise SystemExit(str(error)) from error
    if arguments.serial_dp and arguments.overlap_dp:
        raise SystemExit("--serial-dp and --overlap-dp are mutually exclusive")
    if arguments.schedule is not None and (arguments.serial_dp or arguments.overlap_dp):
        raise SystemExit("--schedule cannot be combined with --serial-dp/--overlap-dp")
    if arguments.schedule is not None:
        plan = plan.with_schedule(kind=arguments.schedule)
    elif arguments.serial_dp:
        plan = plan.with_schedule(kind="serial")
    elif arguments.overlap_dp:
        plan = plan.with_schedule(kind="1f1b")
    if arguments.dp_fire is not None:
        if arguments.serial_dp or arguments.schedule == "serial":
            raise SystemExit("--dp-fire only applies to the overlapped DP schedules")
        plan = plan.with_schedule(dp_fire=arguments.dp_fire)
    if getattr(arguments, "memory_cap", None) is not None:
        if plan.schedule.kind != "auto":
            raise SystemExit(
                "--memory-cap only applies to the synthesized schedule; pass "
                f"--schedule auto (resolved schedule is {plan.schedule.kind!r})"
            )
        try:
            plan = plan.with_schedule(memory_cap_factor=arguments.memory_cap)
        except ValueError as error:
            raise SystemExit(str(error)) from error

    # The executor lands before the resilience fold so hang faults (which
    # require the process executor) validate against the resolved backend.
    if getattr(arguments, "executor", None) is not None:
        try:
            plan = plan.with_executor(arguments.executor)
        except ValueError as error:
            raise SystemExit(str(error)) from error

    # Resilience flags fold into the plan's (possibly absent) resilience
    # section; --guard alone arms the guardrails with an empty fault schedule.
    resilience_changes: dict = {}
    if getattr(arguments, "inject_fault", None):
        resilience_changes["faults"] = tuple(arguments.inject_fault)
    if getattr(arguments, "max_grad_norm", None) is not None:
        resilience_changes["max_grad_norm"] = arguments.max_grad_norm
    if getattr(arguments, "max_collective_retries", None) is not None:
        resilience_changes["max_collective_retries"] = arguments.max_collective_retries
    if getattr(arguments, "fault_seed", None) is not None:
        resilience_changes["seed"] = arguments.fault_seed
    if getattr(arguments, "worker_timeout", None) is not None:
        resilience_changes["worker_timeout"] = arguments.worker_timeout
    if getattr(arguments, "max_respawns", None) is not None:
        resilience_changes["max_respawns_per_worker"] = arguments.max_respawns
    if getattr(arguments, "on_exhausted", None) is not None:
        resilience_changes["on_exhausted"] = arguments.on_exhausted
    if resilience_changes or getattr(arguments, "guard", False):
        base = plan.resilience if plan.resilience is not None else ResilienceSpec()
        try:
            plan = plan.with_resilience(base.with_(**resilience_changes))
        except ValueError as error:
            raise SystemExit(str(error)) from error
    return plan


def _command_train_resilient(arguments: argparse.Namespace, plan: ParallelPlan) -> int:
    """The guarded ``train`` path: Pretrainer loop + checkpointing + resume.

    Runs the same tiny functional probe as the traffic path (so both commands
    train the identical model), but through :class:`Pretrainer` so the fault
    injector, guardrails, rollback, and checkpoint v2 machinery are live.
    """
    from repro.data import LanguageModelingDataLoader, SyntheticCorpus, SyntheticCorpusConfig
    from repro.models.gpt_configs import functional_config
    from repro.resilience import ResilienceExhausted, WorkerCrash
    from repro.training.checkpoint import latest_checkpoint, load_checkpoint
    from repro.training.trainer import Pretrainer

    topology = plan.topology
    if arguments.checkpoint_every is not None:
        if arguments.checkpoint_every <= 0:
            raise SystemExit("--checkpoint-every must be positive")
        if arguments.checkpoint_dir is None:
            raise SystemExit("--checkpoint-every requires --checkpoint-dir")
    if arguments.keep_last <= 0:
        raise SystemExit("--keep-last must be positive")
    model = functional_config(
        vocab_size=64, sequence_length=16, num_layers=topology.pp, hidden_size=16, num_heads=2
    )
    corpus = SyntheticCorpus(SyntheticCorpusConfig(vocab_size=64, seed=321))
    loader = LanguageModelingDataLoader(
        corpus,
        sequence_length=12,
        micro_batch_size=2,
        num_micro_batches=topology.micro_batches,
        data_parallel_degree=topology.dp,
    )
    try:
        trainer = Pretrainer(model, loader, plan=plan, seed=0)
    except ValueError as error:
        raise SystemExit(str(error)) from error
    # Joins/cleans the process executor's workers on every exit path below;
    # a no-op for serial plans.
    with trainer:
        return _run_train_resilient(arguments, plan, trainer)


def _run_train_resilient(arguments, plan: ParallelPlan, trainer) -> int:
    from repro.resilience import ResilienceExhausted, WorkerCrash
    from repro.training.checkpoint import latest_checkpoint, load_checkpoint

    topology = plan.topology
    start_iteration = 0
    if arguments.resume is not None:
        if arguments.resume == "latest":
            if arguments.checkpoint_dir is None:
                raise SystemExit("--resume without a path requires --checkpoint-dir")
            checkpoint = latest_checkpoint(arguments.checkpoint_dir)
            if checkpoint is None:
                raise SystemExit(
                    f"no ckpt-*.npz checkpoints under {arguments.checkpoint_dir}"
                )
        else:
            checkpoint = pathlib.Path(arguments.resume)
        try:
            start_iteration = load_checkpoint(trainer, checkpoint)
        except (OSError, KeyError, ValueError) as error:
            raise SystemExit(f"cannot resume from {checkpoint}: {error}") from error
        print(f"Resumed from {checkpoint} at iteration {start_iteration}.")
    remaining = arguments.iterations - start_iteration
    if remaining <= 0:
        print(
            f"Checkpoint is already at iteration {start_iteration} of "
            f"{arguments.iterations}; nothing left to train."
        )
        return 0

    try:
        result = trainer.train(
            remaining,
            checkpoint_every=arguments.checkpoint_every,
            checkpoint_dir=arguments.checkpoint_dir,
            keep_last=arguments.keep_last,
        )
    except WorkerCrash as crash:
        print(
            f"worker crash injected at iteration {crash.iteration}; "
            "restart with --resume to continue from the last checkpoint"
        )
        return 1
    except ResilienceExhausted as error:
        print(f"resilience budget exhausted: {error}")
        return 1
    losses = result.history.train_losses
    survivors = len(trainer.engine.arenas)
    print(
        f"Trained {arguments.iterations} iterations through the guarded 3D engine "
        f"(PP{topology.pp} x DP{topology.dp} x TP{topology.tp}); "
        f"final training loss {losses[-1]:.4f}."
    )
    report = trainer.resilience_report
    print(f"Resilience: {report.describe()}")
    if survivors != topology.dp:
        print(
            f"Degraded topology: {survivors} of {topology.dp} DP replicas "
            "survived; gradient averaging was rescaled accordingly."
        )
    return 0


def command_train(arguments: argparse.Namespace) -> int:
    from repro.experiments.engine_traffic import measure_engine_traffic, render_traffic_samples

    if arguments.iterations <= 0:
        raise SystemExit("--iterations must be positive")
    plan = build_train_plan(arguments)
    if (
        plan.resilience is not None
        or arguments.resume is not None
        or arguments.checkpoint_every is not None
    ):
        return _command_train_resilient(arguments, plan)
    try:
        sample = measure_engine_traffic(
            plan.describe(), plan=plan, iterations=arguments.iterations
        )
    except ValueError as error:
        raise SystemExit(str(error)) from error
    topology = plan.topology
    print(
        f"Trained {arguments.iterations} iterations through the unified 3D engine "
        f"(PP{topology.pp} x DP{topology.dp} x TP{topology.tp}); "
        f"final training loss {sample.final_loss:.4f}."
    )
    print(render_traffic_samples([sample], "Measured per-axis wire traffic"))
    boundary = ", ".join(
        f"{b}<->{b + 1}: {wire / 1024:.1f} KB"
        for b, wire in sorted(sample.pipeline_boundary_wire_bytes.items())
    )
    if boundary:
        print(f"Backward pipeline-boundary traffic: {boundary}")
    if sample.data_parallel_wire_bytes > 0:
        mode = (
            "bucketed, cool-down overlapped"
            if plan.schedule.dp_overlap
            else "serial epilogue"
        )
        print(
            f"DP all-reduce ({mode}): {sample.dp_overlapped_fraction:.0%} of "
            f"{sample.data_parallel_wire_bytes / 1024:.1f} KB issued inside the "
            f"pipeline cool-down (exposed: {sample.dp_exposed_wire_bytes / 1024:.1f} KB)"
        )
    print(f"Error-feedback residual memory: {sample.residual_memory_bytes} bytes")
    return 0


def command_plan_show(arguments: argparse.Namespace) -> int:
    plan = _resolve_plan(arguments.plan)
    print(plan.describe())
    print(plan.to_json(), end="")
    return 0


def command_plan_validate(arguments: argparse.Namespace) -> int:
    """Validate plan files: each must load *and* round-trip through its JSON form.

    The round-trip check (``load -> to_json -> from_json`` must reproduce the
    plan exactly) is what CI runs over every file under ``examples/plans/``, so
    a new plan file cannot silently drift from the schema.
    """
    failures = 0
    for token in arguments.plans:
        try:
            plan = ParallelPlan.load(token)
            reloaded = ParallelPlan.from_json(plan.to_json())
            if reloaded != plan:
                raise ValueError(
                    "plan does not round-trip through to_json/from_json"
                )
        except (OSError, ValueError, TypeError, json.JSONDecodeError) as error:
            failures += 1
            print(f"FAIL {token}: {error}")
        else:
            print(f"OK   {token}: {plan.describe()}")
    if failures:
        raise SystemExit(f"{failures} invalid plan file(s)")
    return 0


def command_plan_diff(arguments: argparse.Namespace) -> int:
    plan_a = _resolve_plan(arguments.a)
    plan_b = _resolve_plan(arguments.b)
    delta = plan_a.diff(plan_b)
    if not delta:
        print("plans are identical")
        return 0
    table = Table(
        title=f"plan diff: {arguments.a} vs {arguments.b}",
        columns=["Field", arguments.a, arguments.b],
    )
    for dotted, (mine, theirs) in delta.items():
        table.add_row([dotted, repr(mine), repr(theirs)])
    print(table.render())
    return 0


def command_breakdown(arguments: argparse.Namespace) -> int:
    model = _resolve_model(arguments.model)
    config = _resolve_config(arguments.config)
    breakdown = OptimusCC(config).breakdown(TrainingJob(model=model))
    table = Table(
        title=f"{model.name} / {config.describe()}: execution-time breakdown",
        columns=["Component", "Seconds", "Share"],
    )
    for component, seconds in breakdown.as_dict().items():
        share = seconds / breakdown.total if breakdown.total else 0.0
        table.add_row([component, format_float(seconds, 3), f"{share:.1%}"])
    table.add_row(["Total", format_float(breakdown.total, 3), "100.0%"])
    print(table.render())
    return 0


def command_autotune(arguments: argparse.Namespace) -> int:
    model = _resolve_model(arguments.model)
    tuner = SelectiveCompressionAutoTuner(TrainingJob(model=model))
    result = tuner.tune(budget=arguments.budget)
    print(result.render())
    best = result.best
    print(
        f"Best operating point: compress {best.stage_fraction:.0%} of stages at rank "
        f"{best.dp_rank} for a {best.speedup:+.2%} speedup."
    )
    return 0


def command_reproduce(arguments: argparse.Namespace) -> int:
    catalogue = _artefact_catalogue()
    if arguments.artefact not in catalogue:
        raise SystemExit(
            f"unknown artefact {arguments.artefact!r}; available: {', '.join(sorted(catalogue))}"
        )
    result = catalogue[arguments.artefact]()
    print(result.render())
    return 0


def command_list(arguments: argparse.Namespace) -> int:
    del arguments
    print("Models:")
    for name, spec in MODEL_CATALOGUE.items():
        print(f"  {name:<10s} {spec.num_layers} layers, hidden {spec.hidden_size}, "
              f"{spec.parameters_billion():.1f}B parameters")
    print("Configurations:")
    for name in CONFIG_CATALOGUE:
        print(f"  {name}")
    print("Plan presets (train --preset / plan show):")
    for name in sorted(PLAN_PRESETS):
        print(f"  {name:<12s} {ParallelPlan.preset(name).describe()}")
    print("Artefacts (reproduce):")
    for name in _artefact_catalogue():
        print(f"  {name}")
    return 0


def _default_search_cache_dir() -> str:
    """The default plan-search cache directory (honours ``XDG_CACHE_HOME``)."""
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro", "plan_search")


def _default_search_workers() -> int:
    """Default worker-process count for ``repro search`` (leaves cores for the OS)."""
    return max(1, min(8, (os.cpu_count() or 2) - 2))


def _search_queries(arguments: argparse.Namespace):
    """Resolve the ``search`` arguments into the list of queries to answer."""
    from repro.search import SearchQuery

    if arguments.queries is not None and arguments.query is not None:
        raise SystemExit("--query and --queries are mutually exclusive")
    try:
        if arguments.queries is not None:
            with open(arguments.queries, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if isinstance(payload, dict) and "queries" in payload:
                payload = payload["queries"]
            if not isinstance(payload, list):
                raise ValueError(
                    "batch file must be a JSON array of query objects "
                    '(or {"queries": [...]})'
                )
            return [SearchQuery.from_dict(entry) for entry in payload]
        if arguments.query is not None:
            with open(arguments.query, "r", encoding="utf-8") as handle:
                return [SearchQuery.from_dict(json.load(handle))]
    except OSError as error:
        raise SystemExit(f"cannot read query file: {error}") from error
    except (ValueError, TypeError, json.JSONDecodeError) as error:
        raise SystemExit(f"invalid query file: {error}") from error
    try:
        return [
            SearchQuery(
                model=arguments.model,
                gpus=arguments.gpus,
                hardware=tuple(arguments.hardware or ("infiniband",)),
                micro_batch_size=arguments.micro_batch_size,
                max_memory_gb=arguments.max_memory_gb,
                max_compression_loss=arguments.max_compression_loss,
                weight_throughput=arguments.weight_throughput,
                weight_wire=arguments.weight_wire,
                weight_memory=arguments.weight_memory,
                max_candidates=arguments.max_candidates,
            )
        ]
    except ValueError as error:
        raise SystemExit(str(error)) from error


def command_search(arguments: argparse.Namespace) -> int:
    """Answer one or many capacity-planning queries and print ranked frontiers.

    The deterministic result (table or ``--json`` document) goes to stdout;
    the run-dependent stats line (candidates, evaluations, cache hits, wall
    clock) goes to stderr so JSON output stays byte-identical across runs.
    """
    from repro.search import SearchCache, run_queries

    queries = _search_queries(arguments)
    workers = (
        arguments.workers if arguments.workers is not None else _default_search_workers()
    )
    cache_dir = arguments.cache_dir or _default_search_cache_dir()
    cache = None if arguments.no_cache else SearchCache(cache_dir)
    outcomes = run_queries(queries, workers=workers, cache=cache)
    for position, outcome in enumerate(outcomes):
        if arguments.json:
            if position:
                print()
            print(outcome.to_json(top=arguments.top), end="")
        else:
            if position:
                print()
            print(outcome.render_table(top=arguments.top))
        print(
            f"[search] {outcome.candidates} candidates: {outcome.evaluated} evaluated, "
            f"{outcome.cache_hits} cached, {outcome.errors} errors in "
            f"{outcome.elapsed_s:.2f}s "
            f"(workers={workers}, cache={'off' if cache is None else 'on'})",
            file=sys.stderr,
        )
    return 0


def _walk_parsers(prog: str, parser: argparse.ArgumentParser, summary: str = ""):
    """Yield ``(prog, parser, depth, summary)`` for the parser and every subparser.

    ``summary`` is the one-line help the parent registered for the subcommand
    (``add_parser(..., help=...)``), falling back to the parser's own
    description for the root.
    """
    yield prog, parser, prog.count(" "), summary or (parser.description or "")
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            helps = {
                pseudo.dest: pseudo.help or "" for pseudo in action._choices_actions
            }
            for name, sub in action.choices.items():
                yield from _walk_parsers(f"{prog} {name}", sub, helps.get(name, ""))


def _argument_rows(parser: argparse.ArgumentParser) -> list[tuple[str, str, str]]:
    """The ``(argument, default, help)`` doc rows of one parser's arguments."""

    def clean(text: object) -> str:
        return " ".join(str(text).split()).replace("|", "\\|")

    rows: list[tuple[str, str, str]] = []
    for action in parser._actions:
        if isinstance(action, (argparse._HelpAction, argparse._SubParsersAction)):
            continue
        if action.option_strings:
            name = ", ".join(f"`{option}`" for option in action.option_strings)
            takes_value = action.nargs != 0 and not isinstance(
                action, (argparse._StoreTrueAction, argparse._StoreFalseAction)
            )
            if takes_value and action.choices is not None:
                name += " `{" + ",".join(str(choice) for choice in action.choices) + "}`"
            elif takes_value:
                name += f" `{(action.metavar or action.dest).upper()}`"
        else:
            name = f"`{action.metavar or action.dest}`"
            if action.choices is not None:
                name += " `{" + ",".join(str(choice) for choice in action.choices) + "}`"
        default = ""
        if action.default is not None and action.default != argparse.SUPPRESS:
            default = f"`{action.default}`"
        rows.append((name, default, clean(action.help or "")))
    return rows


def render_cli_reference() -> str:
    """Render ``docs/CLI.md`` from the live argparse tree (deterministic).

    Walks :func:`build_parser` depth-first and emits one section per
    (sub)command with its description and an argument table.  The output is a
    pure function of the parser definition — no terminal-width dependent
    formatting — so CI can regenerate it and fail on drift.
    """
    lines = [
        "# `repro` CLI reference",
        "",
        "> Generated by `python -m repro docs cli --output docs/CLI.md`.",
        "> Do not edit by hand: CI regenerates this file from the argparse tree",
        "> and fails on drift.",
        "",
    ]
    for prog, parser, depth, summary in _walk_parsers("repro", build_parser()):
        lines.append(f"{'#' * (depth + 2)} `{prog}`")
        lines.append("")
        if summary:
            summary = " ".join(summary.split())
            lines.append(summary[0].upper() + summary[1:].rstrip(".") + ".")
            lines.append("")
        rows = _argument_rows(parser)
        if rows:
            lines.append("| Argument | Default | Description |")
            lines.append("| --- | --- | --- |")
            lines.extend(f"| {name} | {default} | {help_}" " |" for name, default, help_ in rows)
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def command_docs_cli(arguments: argparse.Namespace) -> int:
    """Print, write, or drift-check the generated CLI reference."""
    rendered = render_cli_reference()
    if arguments.check:
        target = pathlib.Path(arguments.output or "docs/CLI.md")
        try:
            current = target.read_text(encoding="utf-8")
        except OSError as error:
            raise SystemExit(f"cannot read {target}: {error}") from error
        if current != rendered:
            raise SystemExit(
                f"{target} is stale; regenerate with "
                f"'python -m repro docs cli --output {target}'"
            )
        print(f"{target} is up to date.")
        return 0
    if arguments.output is not None:
        pathlib.Path(arguments.output).write_text(rendered, encoding="utf-8")
        print(f"wrote {arguments.output}")
        return 0
    print(rendered, end="")
    return 0


# ----------------------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Optimus-CC reproduction command-line interface"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser("simulate", help="simulate iteration time and speedup")
    simulate.add_argument("--model", default="GPT-8.3B")
    simulate.add_argument("--config", default="all", help="configuration name or 'all'")
    simulate.add_argument("--iterations", type=int, default=230_000)
    simulate.set_defaults(handler=command_simulate)

    train = subparsers.add_parser(
        "train", help="run a functional training probe through the unified 3D engine"
    )
    train.add_argument("--config", default=None,
                       help="legacy configuration name (default: cb_fe_sc; "
                            "cannot be combined with --plan/--preset)")
    train.add_argument("--plan", default=None, metavar="FILE",
                       help="declarative ParallelPlan JSON file (taken verbatim; "
                            "--dp-* flags still override)")
    train.add_argument("--preset", default=None,
                       help=f"named plan preset ({', '.join(sorted(PLAN_PRESETS))}); "
                            "PowerSGD ranks are proxy-scaled for the tiny probe model")
    train.add_argument("--stages", type=int, default=None,
                       help="pipeline depth (default: the plan's topology.pp)")
    train.add_argument("--data-parallel", type=int, default=None,
                       help="DP replicas (default: the plan's topology.dp)")
    train.add_argument("--tensor-parallel", type=int, default=None,
                       help="TP shards (default: the plan's topology.tp)")
    train.add_argument("--iterations", type=int, default=4)
    from repro.core.config import ENGINE_DP_CODECS

    train.add_argument(
        "--dp-codec",
        choices=ENGINE_DP_CODECS,
        default=None,
        help="override the DP all-reduce codec (default: the plan's)",
    )
    train.add_argument("--dp-rank", type=int, default=None,
                       help="PowerSGD rank for --dp-codec powersgd (proxy-scaled default: 2)")
    train.add_argument("--dp-qsgd-bits", type=int, default=None,
                       help="quantisation bits for --dp-codec qsgd (default: 4)")
    train.add_argument("--dp-topk-fraction", type=float, default=None,
                       help="kept fraction for --dp-codec topk (default: 0.01)")
    train.add_argument("--dp-stage-fraction", type=float, default=None,
                       help="fraction of stages (earliest first) the codec applies to "
                            "(default: the plan's)")
    train.add_argument("--dp-min-elements", type=int, default=None,
                       help="parameters smaller than this stay uncompressed (default: 1024)")
    # The default is the dataclass's, by construction: an omitted flag keeps the
    # plan's bucket_bytes, which EngineCompressionConfig/CompressionSpec seed.
    train.add_argument("--dp-bucket-kb", type=int, default=None,
                       help="target gradient-bucket size (KiB of wire payload; "
                            f"default: {EngineCompressionConfig.dp_bucket_bytes // 1024} "
                            "via the plan's DP boundary spec)")
    train.add_argument("--dp-fire", choices=DP_FIRE_KINDS, default=None,
                       help="bucket firing granularity on the overlapped DP path: "
                            "'stage' (fire at the stage's backward drain) or "
                            "'micro_batch' (fire inside the final micro-batch's "
                            "backward; only the last bucket stays exposed)")
    train.add_argument("--schedule", choices=SCHEDULE_KINDS, default=None,
                       help="override the plan's pipeline schedule: '1f1b' "
                            "(overlapped DP), 'serial' (per-parameter DP "
                            "epilogue), 'zb1' (zero-bubble split-backward; "
                            "bit-identical weights to 1f1b), or 'auto' "
                            "(synthesized split-backward under --memory-cap)")
    train.add_argument("--memory-cap", type=float, default=None, metavar="FACTOR",
                       help="activation-memory cap for --schedule auto, as a "
                            "multiple of ZB-H1's per-stage footprint (>= 1.0; "
                            "1.0 degenerates to zb1, ~2.0 approaches zero bubble)")
    train.add_argument("--executor", choices=EXECUTOR_KINDS, default=None,
                       help="execution backend: 'serial' (one process, the "
                            "bit-exact oracle) or 'process' (one forked worker "
                            "per DP replica over shared-memory arenas; "
                            "bit-identical weights, real multi-core concurrency)")
    train.add_argument("--serial-dp", action="store_true",
                       help="serial per-parameter DP epilogue instead of the "
                            "bucketed all-reduce overlapped with the cool-down")
    train.add_argument("--overlap-dp", action="store_true",
                       help="force the overlapped (1f1b) DP schedule, e.g. over a "
                            "plan file whose schedule is serial")
    train.add_argument("--inject-fault", action="append", default=None, metavar="SPEC",
                       help="deterministic fault to inject, as "
                            "'kind@iteration[:key=value,...]' with kind one of "
                            "nan/inf/collective/crash/replica_loss/hang "
                            "(e.g. 'nan@3:replica=1,stage=0', 'collective@2:count=2'; "
                            "hang requires --executor process); "
                            "repeatable; implies the guarded training loop")
    train.add_argument("--guard", action="store_true",
                       help="run the guarded training loop (non-finite gradient "
                            "detection + snapshot/rollback skip-step) even with "
                            "no faults scheduled")
    train.add_argument("--max-grad-norm", type=float, default=None,
                       help="additionally skip+rollback steps whose global "
                            "gradient norm exceeds this cap (guarded loop only)")
    train.add_argument("--max-collective-retries", type=int, default=None,
                       help="retry budget per iteration for transient collective "
                            "faults before ResilienceExhausted (default: 3)")
    train.add_argument("--fault-seed", type=int, default=None,
                       help="seed for the fault injector's deterministic element "
                            "choices (default: 0)")
    train.add_argument("--worker-timeout", type=float, default=None, metavar="SECONDS",
                       help="hang-watchdog deadline per worker reply under "
                            "--executor process (default: 60s); a worker that "
                            "stays silent longer is treated as hung and respawned")
    train.add_argument("--max-respawns", type=int, default=None, metavar="N",
                       help="respawn budget per worker before the supervisor "
                            "escalates per --on-exhausted (default: 2)")
    train.add_argument("--on-exhausted", choices=("degrade", "checkpoint_abort"),
                       default=None,
                       help="escalation when a worker's respawn budget is spent: "
                            "'degrade' shrinks the DP group and replays on the "
                            "survivors; 'checkpoint_abort' writes a final "
                            "checkpoint into --checkpoint-dir and aborts loudly")
    train.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                       help="write a rotating atomic checkpoint (format v2) into "
                            "--checkpoint-dir after every N completed iterations")
    train.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="directory for rotating checkpoints and --resume latest")
    train.add_argument("--keep-last", type=int, default=3,
                       help="rotating checkpoints retained in --checkpoint-dir "
                            "(default: 3)")
    train.add_argument("--resume", nargs="?", const="latest", default=None,
                       metavar="CKPT",
                       help="resume bit-exactly from a checkpoint file, or from "
                            "the newest one in --checkpoint-dir when given "
                            "without a path; --iterations is the total target, "
                            "so only the remaining iterations run")
    train.set_defaults(handler=command_train)

    plan = subparsers.add_parser(
        "plan", help="inspect, validate, and diff declarative parallel plans"
    )
    plan_sub = plan.add_subparsers(dest="plan_command", required=True)
    plan_show = plan_sub.add_parser("show", help="print a plan's label and JSON")
    plan_show.add_argument("plan", help="preset name or plan JSON file")
    plan_show.set_defaults(handler=command_plan_show)
    plan_validate = plan_sub.add_parser("validate", help="validate plan JSON files")
    plan_validate.add_argument("plans", nargs="+", help="plan JSON files")
    plan_validate.set_defaults(handler=command_plan_validate)
    plan_diff = plan_sub.add_parser("diff", help="diff two plans knob by knob")
    plan_diff.add_argument("a", help="preset name or plan JSON file")
    plan_diff.add_argument("b", help="preset name or plan JSON file")
    plan_diff.set_defaults(handler=command_plan_diff)

    breakdown = subparsers.add_parser("breakdown", help="CPI-stack execution-time breakdown")
    breakdown.add_argument("--model", default="GPT-2.5B")
    breakdown.add_argument("--config", default="baseline")
    breakdown.set_defaults(handler=command_breakdown)

    autotune = subparsers.add_parser("autotune", help="tune selective stage compression")
    autotune.add_argument("--model", default="GPT-8.3B")
    autotune.add_argument("--budget", type=float, default=0.8,
                          help="max fraction of DP gradient bytes that may be removed")
    autotune.set_defaults(handler=command_autotune)

    reproduce = subparsers.add_parser("reproduce", help="run one paper table/figure")
    reproduce.add_argument("artefact", help="e.g. table2, fig10, fig16")
    reproduce.set_defaults(handler=command_reproduce)

    from repro.search.query import HARDWARE_TIERS

    search = subparsers.add_parser(
        "search",
        help="capacity planning: rank candidate parallel plans for a model/GPU budget",
    )
    search.add_argument("--model", default="GPT-8.3B",
                        help="catalogue model to place (see 'repro list')")
    search.add_argument("--gpus", type=int, default=128,
                        help="total GPU count to place the model on")
    search.add_argument("--hardware", action="append", choices=HARDWARE_TIERS,
                        default=None, metavar="TIER",
                        help="interconnect tier to sweep (repeatable; "
                             f"one of {', '.join(HARDWARE_TIERS)}; "
                             "default: infiniband)")
    search.add_argument("--micro-batch-size", type=int, default=8,
                        help="sequences per micro-batch (the global batch follows "
                             "from each candidate's topology)")
    search.add_argument("--max-memory-gb", type=float, default=None,
                        help="per-GPU peak-memory budget (candidates above it are "
                             "excluded; default: unconstrained)")
    search.add_argument("--max-compression-loss", type=float, default=None,
                        help="accuracy budget as a cap on the heuristic "
                             "compression-loss score in [0, 1)")
    search.add_argument("--weight-throughput", type=float, default=1.0,
                        help="objective weight of tokens/s (maximised)")
    search.add_argument("--weight-wire", type=float, default=0.25,
                        help="objective weight of total wire bytes (minimised)")
    search.add_argument("--weight-memory", type=float, default=0.1,
                        help="objective weight of peak memory (minimised)")
    search.add_argument("--max-candidates", type=int, default=None,
                        help="hard cap on the sweep size (truncates the "
                             "deterministic expansion order)")
    search.add_argument("--query", default=None, metavar="FILE",
                        help="read one SearchQuery from a JSON file instead of the "
                             "flags above (full sweep-axis control)")
    search.add_argument("--queries", default=None, metavar="FILE",
                        help="batch mode: answer every query in a JSON array (or "
                             '{"queries": [...]}) over one shared pool and cache')
    search.add_argument("--workers", type=int, default=None,
                        help="evaluation worker processes (0 = inline; default: "
                             "up to 8, leaving two cores free)")
    search.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="on-disk evaluation cache (content-keyed; warm reruns "
                             "skip the simulator entirely; default: "
                             "$XDG_CACHE_HOME/repro/plan_search)")
    search.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk cache for this run")
    search.add_argument("--top", type=int, default=10,
                        help="frontier entries to print (tables and --json alike)")
    search.add_argument("--json", action="store_true",
                        help="print the deterministic result document as JSON "
                             "instead of a table (stats go to stderr)")
    search.set_defaults(handler=command_search)

    docs = subparsers.add_parser("docs", help="documentation helpers")
    docs_sub = docs.add_subparsers(dest="docs_command", required=True)
    docs_cli = docs_sub.add_parser(
        "cli", help="render the generated CLI reference from the argparse tree"
    )
    docs_cli.add_argument("--output", default=None, metavar="FILE",
                          help="write the reference here instead of stdout "
                               "(CI uses docs/CLI.md)")
    docs_cli.add_argument("--check", action="store_true",
                          help="exit non-zero if --output (default docs/CLI.md) "
                               "differs from the rendered reference")
    docs_cli.set_defaults(handler=command_docs_cli)

    lister = subparsers.add_parser("list", help="list models, configurations, artefacts")
    lister.set_defaults(handler=command_list)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    return arguments.handler(arguments)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
