#!/usr/bin/env python3
"""Visualise the pipeline schedules and the epilogue that Optimus-CC compresses.

Prints an ASCII timing diagram (one row per pipeline stage) of the GPipe, 1F1B, and
interleaved-1F1B schedules, marks which backward transfers fall into the pipeline
epilogue (the critical-path region targeted by epilogue-only compression, paper
Fig. 6), and reports how much of the inter-stage traffic the epilogue represents.

Run with:  python examples/pipeline_schedule_visualization.py [--stages 4] [--micro-batches 8]
"""

from __future__ import annotations

import argparse

from repro.parallel.pipeline_schedule import (
    build_1f1b_schedule,
    build_gpipe_schedule,
    build_interleaved_1f1b_schedule,
    build_zb1_schedule,
    epilogue_micro_batches,
)

#: One-letter op markers: F forward, B fused backward, b activation-gradient
#: pass, W deferred weight-gradient pass (zero-bubble split backward).
OP_MARKERS = {
    "forward": "F",
    "backward": "B",
    "backward_input": "b",
    "backward_weight": "W",
}


def render_schedule(schedule, title: str) -> str:
    """Render one op per column: F<n>/B<n>, plus b<n>/W<n> for split backwards."""
    lines = [title, "-" * len(title)]
    for stage, ops in enumerate(schedule):
        cells = []
        for op in ops:
            marker = OP_MARKERS[op.kind]
            suffix = f".{op.chunk}" if op.chunk else ""
            cells.append(f"{marker}{op.micro_batch}{suffix}")
        lines.append(f"stage {stage}: " + " ".join(f"{cell:>5s}" for cell in cells))
    return "\n".join(lines)


def render_epilogue(num_stages: int, num_micro_batches: int) -> str:
    """Show which backward transfers are on the critical path (compressed by CB)."""
    lines = [
        f"Epilogue (critical-path backward transfers), {num_stages} stages, "
        f"{num_micro_batches} micro-batches:"
    ]
    total_transfers = (num_stages - 1) * num_micro_batches
    epilogue_transfers = 0
    for receiving_stage in range(num_stages - 1):
        epilogue = sorted(epilogue_micro_batches(receiving_stage, num_stages, num_micro_batches))
        epilogue_transfers += len(epilogue)
        lines.append(
            f"  into stage {receiving_stage}: micro-batches {epilogue} "
            f"({len(epilogue)}/{num_micro_batches} transfers compressed)"
        )
    share = epilogue_transfers / total_transfers if total_transfers else 0.0
    lines.append(
        f"  -> epilogue-only compression touches {epilogue_transfers}/{total_transfers} "
        f"backward transfers ({share:.0%}); the rest stay uncompressed and are hidden "
        "by computation."
    )
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stages", type=int, default=4)
    parser.add_argument("--micro-batches", type=int, default=8)
    parser.add_argument("--chunks", type=int, default=2, help="model chunks for the interleaved schedule")
    arguments = parser.parse_args()

    stages, micro = arguments.stages, arguments.micro_batches
    print(render_schedule(build_gpipe_schedule(stages, micro), f"GPipe schedule ({stages} stages, {micro} micro-batches)"))
    print()
    print(render_schedule(build_1f1b_schedule(stages, micro), f"1F1B schedule ({stages} stages, {micro} micro-batches)"))
    print()
    if micro % stages == 0:
        print(
            render_schedule(
                build_interleaved_1f1b_schedule(stages, micro, arguments.chunks),
                f"Interleaved 1F1B ({arguments.chunks} chunks/stage)",
            )
        )
        print()
    print(
        render_schedule(
            build_zb1_schedule(stages, micro),
            "Zero-bubble ZB-H1 (split backward: b = activation-gradient pass, "
            "W = deferred weight pass; stage k defers k W passes)",
        )
    )
    print()
    print(render_epilogue(stages, micro))


if __name__ == "__main__":
    main()
