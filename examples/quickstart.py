#!/usr/bin/env python3
"""Quickstart: estimate Optimus-CC's speedup and verify its quality preservation.

This example exercises both fidelity layers of the library in under a minute:

1. **Performance**: simulate one training iteration of the paper's GPT-8.3B
   configuration (TP8/DP4/PP4 on 128 A100s over InfiniBand HDR) under the baseline
   and the three Optimus-CC technique stacks, and print the projected training time
   for the paper's 230K iterations.
2. **Quality**: train a tiny GPT on a synthetic corpus with and without compressed
   backpropagation and confirm the validation perplexity stays on the baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import OptimusCC, OptimusCCConfig
from repro.data import LanguageModelingDataLoader, SyntheticCorpus, SyntheticCorpusConfig
from repro.models import GPT_8_3B, functional_config
from repro.simulator import TrainingJob
from repro.utils.tables import Table, format_float


def simulate_paper_configuration() -> None:
    """Part 1: performance projection for GPT-8.3B on the paper's cluster."""
    job = TrainingJob(model=GPT_8_3B)
    configurations = {
        "Baseline": OptimusCCConfig.baseline(),
        "CB": OptimusCCConfig.cb(),
        "CB+FE": OptimusCCConfig.cb_fe(),
        "CB+FE+SC": OptimusCCConfig.cb_fe_sc(),
    }

    table = Table(
        title="GPT-8.3B, 128 GPUs: simulated iteration time and 230K-iteration projection",
        columns=["Configuration", "Iteration (s)", "Days", "Speedup"],
    )
    baseline_timing = None
    for label, config in configurations.items():
        optimus = OptimusCC(config)
        timing = optimus.simulate_iteration(job)
        if baseline_timing is None:
            baseline_timing = timing
        table.add_row(
            [
                label,
                format_float(timing.iteration_time, 2),
                format_float(timing.days_for(230_000), 1),
                f"{timing.speedup_over(baseline_timing):+.2%}",
            ]
        )
    print(table.render())
    print()


def train_tiny_model() -> None:
    """Part 2: functional training with and without compressed backpropagation."""
    model_config = functional_config(
        vocab_size=64, sequence_length=16, num_layers=2, hidden_size=16, num_heads=2
    )
    corpus = SyntheticCorpus(SyntheticCorpusConfig(vocab_size=64, seed=7))

    table = Table(
        title="Tiny GPT, 2 pipeline stages x 2 data-parallel replicas (functional layer)",
        columns=["Configuration", "Final val. PPL", "Backward bytes saved"],
    )
    for label, config in (
        ("Baseline", OptimusCCConfig.baseline()),
        ("Compressed backpropagation", OptimusCCConfig.cb(rank=4)),
    ):
        loader = LanguageModelingDataLoader(
            corpus,
            sequence_length=16,
            micro_batch_size=4,
            num_micro_batches=4,
            data_parallel_degree=2,
        )
        trainer = OptimusCC(config).build_trainer(
            model_config, loader, num_stages=2, learning_rate=3e-3, seed=11
        )
        trainer.train(num_iterations=30, validation_interval=10)
        saved = trainer.compression_summary.get("bytes_saved_fraction", 0.0)
        table.add_row(
            [label, format_float(trainer.validation_perplexity(), 2), f"{saved:.0%}"]
        )
    print(table.render())


def main() -> None:
    simulate_paper_configuration()
    train_tiny_model()


if __name__ == "__main__":
    main()
