#!/usr/bin/env python3
"""Pretrain a small GPT with full 3D parallelism and the complete Optimus-CC stack.

This is the workload the paper's introduction motivates, at functional scale: a GPT
model split across 4 pipeline stages and 2 data-parallel replicas, trained on a
synthetic corpus, with all three Optimus-CC techniques enabled (compressed
backpropagation with lazy error propagation and epilogue-only compression, fused
embedding synchronisation, and selective stage compression).

The script reports, for the baseline and for Optimus-CC:

* the validation-perplexity curve (quality parity),
* zero-shot accuracy on the five synthetic downstream tasks,
* the inter-node traffic per category and how much of it compression removed.

Run with:  python examples/pretrain_gpt_functional.py [--iterations N]
"""

from __future__ import annotations

import argparse

from repro import OptimusCC, OptimusCCConfig
from repro.data import LanguageModelingDataLoader, SyntheticCorpus, SyntheticCorpusConfig
from repro.data.tasks import build_zero_shot_suite
from repro.models import functional_config
from repro.utils.tables import Table, format_float


def build_trainer(config: OptimusCCConfig, corpus: SyntheticCorpus, seed: int):
    """Construct a 4-stage x 2-replica trainer for the given configuration."""
    model_config = functional_config(
        vocab_size=96, sequence_length=24, num_layers=4, hidden_size=24, num_heads=4
    )
    loader = LanguageModelingDataLoader(
        corpus,
        sequence_length=24,
        micro_batch_size=4,
        num_micro_batches=8,
        data_parallel_degree=2,
    )
    return OptimusCC(config).build_trainer(
        model_config, loader, num_stages=4, learning_rate=2e-3, seed=seed
    )


def traffic_summary(trainer) -> dict[str, float]:
    """Wire bytes per category accumulated over the run."""
    return trainer.log.by_category()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=80, help="training iterations per run")
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()

    corpus = SyntheticCorpus(SyntheticCorpusConfig(vocab_size=96, seed=1234))
    tasks = build_zero_shot_suite(corpus, examples_per_task=24)

    configurations = {
        "Baseline": OptimusCCConfig.baseline(),
        "Optimus-CC (CB+FE+SC)": OptimusCCConfig.cb_fe_sc(cb_rank=4, dp_rank=3),
    }

    quality_table = Table(
        title="Functional pretraining: quality comparison",
        columns=["Configuration", "Val. PPL", "Mean zero-shot accuracy"],
    )
    traffic_table = Table(
        title="Inter-node traffic per run (MB on the wire, per rank)",
        columns=["Configuration", "Inter-stage bwd", "Data-parallel", "Embedding"],
    )

    for label, config in configurations.items():
        trainer = build_trainer(config, corpus, arguments.seed)
        print(f"[{label}] training for {arguments.iterations} iterations ...")
        trainer.train(num_iterations=arguments.iterations, validation_interval=max(1, arguments.iterations // 4))

        accuracy = trainer.evaluate_zero_shot(tasks)
        mean_accuracy = sum(accuracy.values()) / len(accuracy)
        quality_table.add_row(
            [label, format_float(trainer.validation_perplexity(), 2), f"{mean_accuracy:.1%}"]
        )

        categories = traffic_summary(trainer)
        backward = categories.get("inter_stage_backward", 0.0) / 1e6
        data_parallel = categories.get("data_parallel", 0.0) / 1e6
        embedding = (
            categories.get("embedding_dp", 0.0) + categories.get("embedding_sync", 0.0)
        ) / 1e6
        traffic_table.add_row(
            [label, format_float(backward, 1), format_float(data_parallel, 1), format_float(embedding, 1)]
        )

        if label != "Baseline":
            summary = trainer.compression_summary
            print(
                f"[{label}] compressed {summary.get('compressed_fraction', 0.0):.0%} of backward "
                f"transfers, saving {summary.get('bytes_saved_fraction', 0.0):.0%} of those bytes"
            )
        print()

    print(quality_table.render())
    print()
    print(traffic_table.render())


if __name__ == "__main__":
    main()
