#!/usr/bin/env python3
"""Cluster performance study: where does Optimus-CC help most?

This example uses the performance simulator to answer three planning questions a
practitioner would ask before adopting communication compression:

1. **Interconnect sensitivity** — how much does Optimus-CC help on InfiniBand HDR
   (the paper's 200 Gb/s fabric) versus a commodity 10/25/100 GbE cluster?
2. **Model-size sensitivity** — how do the gains evolve from 2.5B to 175B parameters?
3. **Technique attribution** — for one configuration, how much of the gain comes
   from compressed backpropagation, fused embedding synchronisation, and selective
   stage compression respectively?

Run with:  python examples/cluster_performance_study.py
"""

from __future__ import annotations

from repro import OptimusCC, OptimusCCConfig
from repro.models import GPT_2_5B, GPT_8_3B, GPT_39B, GPT_175B
from repro.parallel.process_groups import ParallelLayout
from repro.parallel.topology import ClusterTopology
from repro.simulator import TrainingJob
from repro.simulator.hardware import ClusterSpec
from repro.utils.tables import Table, format_float


def interconnect_sensitivity() -> None:
    """Speedup of the full Optimus-CC stack across interconnect generations."""
    fabrics = {
        "10 GbE": 10.0,
        "25 GbE": 25.0,
        "100 GbE": 100.0,
        "InfiniBand HDR (200 Gb/s)": 200.0,
    }
    table = Table(
        title="GPT-8.3B: Optimus-CC speedup vs inter-node fabric",
        columns=["Fabric", "Baseline iter (s)", "Optimus-CC iter (s)", "Speedup"],
    )
    for label, gbps in fabrics.items():
        topology = ClusterTopology(inter_node_bandwidth_gbps=gbps)
        cluster = ClusterSpec(topology=topology)
        job = TrainingJob(model=GPT_8_3B, cluster=cluster)
        baseline = OptimusCC(OptimusCCConfig.baseline()).simulate_iteration(job)
        optimus = OptimusCC(OptimusCCConfig.cb_fe_sc()).simulate_iteration(job)
        table.add_row(
            [
                label,
                format_float(baseline.iteration_time, 2),
                format_float(optimus.iteration_time, 2),
                f"{optimus.speedup_over(baseline):+.1%}",
            ]
        )
    print(table.render())
    print()


def model_size_sensitivity() -> None:
    """Speedup of the full stack as the model grows (GPUs grow with it)."""
    sweep = [(GPT_2_5B, 4), (GPT_8_3B, 4), (GPT_39B, 8), (GPT_175B, 16)]
    table = Table(
        title="Optimus-CC speedup vs model size (TP8, DP4, PP grows with the model)",
        columns=["Model", "GPUs", "Baseline iter (s)", "Speedup"],
    )
    for model, pipeline_depth in sweep:
        layout = ParallelLayout(tensor_parallel=8, pipeline_parallel=pipeline_depth, data_parallel=4)
        topology = ClusterTopology(num_nodes=layout.world_size // 8)
        job = TrainingJob(model=model, layout=layout, cluster=ClusterSpec(topology=topology))
        baseline = OptimusCC(OptimusCCConfig.baseline()).simulate_iteration(job)
        optimus = OptimusCC(OptimusCCConfig.cb_fe_sc()).simulate_iteration(job)
        table.add_row(
            [
                model.name,
                layout.world_size,
                format_float(baseline.iteration_time, 2),
                f"{optimus.speedup_over(baseline):+.1%}",
            ]
        )
    print(table.render())
    print()


def technique_attribution() -> None:
    """How much each technique contributes on the paper's GPT-2.5B configuration."""
    job = TrainingJob(model=GPT_2_5B)
    stacks = {
        "Baseline": OptimusCCConfig.baseline(),
        "+ compressed backpropagation": OptimusCCConfig.cb(),
        "+ fused embedding sync": OptimusCCConfig.cb_fe(),
        "+ selective stage compression": OptimusCCConfig.cb_fe_sc(),
    }
    table = Table(
        title="GPT-2.5B: cumulative contribution of each technique",
        columns=["Stack", "Iteration (s)", "Cumulative speedup", "Exposed comm fraction"],
    )
    baseline = None
    for label, config in stacks.items():
        optimus = OptimusCC(config)
        timing = optimus.simulate_iteration(job)
        breakdown = optimus.breakdown(job)
        if baseline is None:
            baseline = timing
        table.add_row(
            [
                label,
                format_float(timing.iteration_time, 2),
                f"{timing.speedup_over(baseline):+.1%}",
                f"{breakdown.communication_fraction():.1%}",
            ]
        )
    print(table.render())


def main() -> None:
    interconnect_sensitivity()
    model_size_sensitivity()
    technique_attribution()


if __name__ == "__main__":
    main()
