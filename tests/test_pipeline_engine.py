"""Tests for the functional pipeline engine and the inter-stage channel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.gpt_stage import build_gpt_stages
from repro.parallel.collectives import CommunicationLog
from repro.parallel.pipeline_engine import InterStageChannel, PipelineParallelEngine


def make_engine(config, num_stages=2, seed=0, backward_hook=None, log=None):
    stages = build_gpt_stages(config, num_stages, seed=seed)
    channel = InterStageChannel(log=log, backward_hook=backward_hook)
    return PipelineParallelEngine(stages, channel)


def make_batch(config, rng, batch=2, seq=8):
    tokens = rng.integers(0, config.vocab_size, size=(batch, seq))
    targets = rng.integers(0, config.vocab_size, size=(batch, seq))
    return tokens, targets


class TestEngineBasics:
    def test_requires_at_least_one_micro_batch(self, tiny_config):
        engine = make_engine(tiny_config)
        with pytest.raises(ValueError):
            engine.run_iteration([])

    def test_stage_order_validated(self, tiny_config):
        stages = build_gpt_stages(tiny_config, 2, seed=0)
        with pytest.raises(ValueError):
            PipelineParallelEngine(list(reversed(stages)))

    def test_parameters_cover_all_stages(self, tiny_config):
        engine = make_engine(tiny_config, num_stages=2)
        stage_param_count = sum(
            len(stage.parameters()) for stage in build_gpt_stages(tiny_config, 2, seed=0)
        )
        assert len(engine.parameters()) == stage_param_count

    def test_zero_grad_clears_everything(self, tiny_config, rng):
        engine = make_engine(tiny_config)
        tokens, targets = make_batch(tiny_config, rng)
        engine.run_iteration([(tokens, targets)])
        assert any(np.any(p.grad != 0) for p in engine.parameters())
        engine.zero_grad()
        assert all(np.all(p.grad == 0) for p in engine.parameters())

    def test_evaluate_loss_does_not_touch_gradients(self, tiny_config, rng):
        engine = make_engine(tiny_config)
        tokens, targets = make_batch(tiny_config, rng)
        loss = engine.evaluate_loss(tokens, targets)
        assert loss > 0
        assert all(np.all(p.grad == 0) for p in engine.parameters())


class TestTrafficAccounting:
    def test_forward_and_backward_bytes_counted(self, tiny_config, rng):
        log = CommunicationLog()
        engine = make_engine(tiny_config, num_stages=2, log=log)
        tokens, targets = make_batch(tiny_config, rng, batch=2, seq=8)
        result = engine.run_iteration([(tokens, targets), (tokens, targets)])
        # 2 micro-batches x 1 boundary x (batch*seq*hidden) elements x 2 bytes.
        expected = 2 * 1 * 2 * 8 * tiny_config.hidden_size * 2
        assert result.forward_bytes == expected
        assert result.backward_bytes == expected
        assert log.count(category="inter_stage_forward") == 2
        assert log.count(category="inter_stage_backward") == 2

    def test_single_stage_has_no_interstage_traffic(self, tiny_config, rng):
        log = CommunicationLog()
        engine = make_engine(tiny_config, num_stages=1, log=log)
        tokens, targets = make_batch(tiny_config, rng)
        result = engine.run_iteration([(tokens, targets)])
        assert result.forward_bytes == 0
        assert result.backward_bytes == 0
        assert log.count() == 0


class TestZeroBubbleReplay:
    """The zb1 replay path of the functional pipeline engine."""

    # Four layers so pipelines up to four stages are expressible.
    from repro.nn.transformer import GPTModelConfig as _Config

    DEEP_CONFIG = _Config(
        vocab_size=32, max_sequence_length=12, num_layers=4, hidden_size=16, num_heads=2
    )

    @pytest.mark.parametrize("num_stages", [1, 2, 3, 4])
    @pytest.mark.parametrize("num_micro", [1, 2, 5])
    def test_zb1_is_bit_identical_to_the_phase_loop(self, rng, num_stages, num_micro):
        """Covers micro_batches < pp and the pp == 1 degenerate case."""
        config = self.DEEP_CONFIG
        batches = [make_batch(config, rng) for _ in range(num_micro)]
        reference = make_engine(config, num_stages=num_stages, seed=5)
        zb1 = PipelineParallelEngine(
            build_gpt_stages(config, num_stages, seed=5),
            InterStageChannel(),
            schedule_kind="zb1",
        )
        ref_result = reference.run_iteration(batches)
        zb1_result = zb1.run_iteration(batches)
        assert ref_result.mean_loss == zb1_result.mean_loss
        assert ref_result.forward_bytes == zb1_result.forward_bytes
        assert ref_result.backward_bytes == zb1_result.backward_bytes
        for ref_param, zb1_param in zip(reference.parameters(), zb1.parameters()):
            assert np.array_equal(ref_param.grad, zb1_param.grad), ref_param.name

    def test_zb1_backward_transfers_stay_in_micro_batch_order_per_boundary(self, tiny_config, rng):
        """LEP residuals ride micro-batch order per boundary — zb1 must keep it."""
        order: dict[int, list[int]] = {}

        def hook(grad, boundary, micro_batch, num_micro_batches):
            order.setdefault(boundary, []).append(micro_batch)
            return grad, int(grad.size * 2), False

        engine = PipelineParallelEngine(
            build_gpt_stages(tiny_config, 2, seed=0),
            InterStageChannel(backward_hook=hook),
            schedule_kind="zb1",
        )
        batches = [make_batch(tiny_config, rng) for _ in range(4)]
        engine.run_iteration(batches)
        assert order == {0: [0, 1, 2, 3]}

    def test_zb1_caches_are_released(self, tiny_config, rng):
        engine = PipelineParallelEngine(
            build_gpt_stages(tiny_config, 2, seed=0),
            InterStageChannel(),
            schedule_kind="zb1",
        )
        engine.run_iteration([make_batch(tiny_config, rng) for _ in range(3)])
        # The replay frees every per-micro-batch cache after its W pass; the
        # second iteration must therefore start from a clean slate.
        result = engine.run_iteration([make_batch(tiny_config, rng) for _ in range(3)])
        assert result.num_micro_batches == 3

    def test_unknown_schedule_kind_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="schedule kind"):
            PipelineParallelEngine(
                build_gpt_stages(tiny_config, 2, seed=0), schedule_kind="gpipe"
            )


class TestBackwardHook:
    def test_hook_sees_every_backward_transfer(self, rng):
        from repro.nn.transformer import GPTModelConfig

        config = GPTModelConfig(
            vocab_size=32, max_sequence_length=12, num_layers=3, hidden_size=16, num_heads=2
        )
        calls = []

        def hook(grad, boundary, micro_batch, num_micro_batches):
            calls.append((boundary, micro_batch, num_micro_batches))
            return grad, int(grad.size * 2), False

        engine = make_engine(config, num_stages=3, backward_hook=hook)
        tokens, targets = make_batch(config, rng)
        engine.run_iteration([(tokens, targets), (tokens, targets)])
        # 2 boundaries x 2 micro-batches.
        assert len(calls) == 4
        assert {call[0] for call in calls} == {0, 1}
        assert all(call[2] == 2 for call in calls)

    def test_hook_payload_bytes_reflected_in_log(self, tiny_config, rng):
        log = CommunicationLog()

        def hook(grad, boundary, micro_batch, num_micro_batches):
            return grad, 42, True

        engine = make_engine(tiny_config, num_stages=2, backward_hook=hook, log=log)
        tokens, targets = make_batch(tiny_config, rng)
        engine.run_iteration([(tokens, targets)])
        backward_records = [r for r in log.records if r.category == "inter_stage_backward"]
        assert all(record.payload_bytes == 42 and record.compressed for record in backward_records)

    def test_identity_hook_preserves_gradients(self, tiny_config, rng):
        """A pass-through hook must not change the training math."""
        tokens, targets = make_batch(tiny_config, rng)

        reference = make_engine(tiny_config, num_stages=2, seed=5)
        reference.run_iteration([(tokens, targets)])

        def identity_hook(grad, boundary, micro_batch, num_micro_batches):
            return grad, int(grad.size * 2), False

        hooked = make_engine(tiny_config, num_stages=2, seed=5, backward_hook=identity_hook)
        hooked.run_iteration([(tokens, targets)])

        for ref_param, hook_param in zip(reference.parameters(), hooked.parameters()):
            assert np.allclose(ref_param.grad, hook_param.grad, atol=1e-12)

    def test_lossy_hook_changes_gradients_of_early_stages_only_at_boundary(self, tiny_config, rng):
        """Zeroing the boundary gradient must zero the upstream stage's gradients."""

        def zero_hook(grad, boundary, micro_batch, num_micro_batches):
            return np.zeros_like(grad), 0, True

        engine = make_engine(tiny_config, num_stages=2, backward_hook=zero_hook)
        tokens, targets = make_batch(tiny_config, rng)
        engine.run_iteration([(tokens, targets)])
        stage0, stage1 = engine.stages
        assert all(np.allclose(p.grad, 0) for p in stage0.layers[0].parameters())
        assert any(np.any(p.grad != 0) for p in stage1.parameters())
