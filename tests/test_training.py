"""Tests for the Pretrainer, metrics, and the zero-shot evaluator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OptimusCCConfig
from repro.data import LanguageModelingDataLoader, build_zero_shot_suite
from repro.nn.loss import perplexity_from_loss
from repro.training import Pretrainer, TrainingHistory, ZeroShotEvaluator
from repro.training.metrics import ValidationPoint


def make_trainer(config, loader, small_config, **kwargs):
    defaults = dict(num_stages=2, learning_rate=2e-3, seed=3)
    defaults.update(kwargs)
    return Pretrainer(small_config, loader, optimus_config=config, **defaults)


class TestTrainingHistory:
    def test_records_and_final_values(self):
        history = TrainingHistory()
        history.record_train(2.0)
        history.record_train(1.5)
        history.record_validation(2, 1.2)
        assert history.num_iterations == 2
        assert history.final_train_loss == 1.5
        assert history.final_validation_loss == 1.2
        assert history.final_validation_perplexity == pytest.approx(perplexity_from_loss(1.2))
        assert history.smoothed_train_loss(window=2) == pytest.approx(1.75)

    def test_curve_and_best(self):
        history = TrainingHistory()
        history.record_validation(10, 2.0)
        history.record_validation(20, 1.0)
        iterations, perplexities = history.perplexity_curve()
        assert iterations == [10, 20]
        assert history.best_validation_perplexity() == pytest.approx(perplexity_from_loss(1.0))

    def test_empty_history_raises(self):
        history = TrainingHistory()
        with pytest.raises(ValueError):
            _ = history.final_train_loss
        with pytest.raises(ValueError):
            _ = history.final_validation_loss

    def test_validation_point_perplexity(self):
        point = ValidationPoint(iteration=1, loss=np.log(8.0))
        assert point.perplexity == pytest.approx(8.0)


class TestPretrainer:
    def test_training_reduces_validation_loss(self, small_config, loader):
        trainer = make_trainer(OptimusCCConfig.baseline(), loader, small_config)
        before = trainer.validation_loss()
        result = trainer.train(num_iterations=12, validation_interval=6)
        assert result.history.num_iterations == 12
        assert result.final_validation_perplexity < perplexity_from_loss(before)

    def test_replicas_stay_in_sync(self, small_config, loader):
        trainer = make_trainer(OptimusCCConfig.baseline(), loader, small_config)
        trainer.train(num_iterations=3, validation_interval=3)
        assert trainer.weights_in_sync()

    def test_data_parallelism_matches_single_replica_with_same_data(self, small_config, corpus):
        """DP over two replicas equals one replica consuming both shards."""
        from repro.data.dataloader import LanguageModelingDataLoader

        dp_loader = LanguageModelingDataLoader(
            corpus, sequence_length=12, micro_batch_size=2, num_micro_batches=1, data_parallel_degree=2
        )
        dp_trainer = make_trainer(OptimusCCConfig.baseline(), dp_loader, small_config)
        dp_trainer.train_iteration()

        class MergedLoader(LanguageModelingDataLoader):
            """Presents the two replicas' micro-batches to a single replica."""

            def iteration_batches(self, iteration):
                replicated = dp_loader.iteration_batches(iteration)
                return [[micro for replica in replicated for micro in replica]]

        merged = MergedLoader(
            corpus, sequence_length=12, micro_batch_size=2, num_micro_batches=2, data_parallel_degree=1
        )
        single_trainer = make_trainer(OptimusCCConfig.baseline(), merged, small_config)
        single_trainer.train_iteration()

        dp_params = dp_trainer.engines[0].parameters()
        single_params = single_trainer.engines[0].parameters()
        for dp_param, single_param in zip(dp_params, single_params):
            assert np.allclose(dp_param.data, single_param.data, atol=1e-8)

    def test_cb_hooks_created_per_replica(self, small_config, loader):
        trainer = make_trainer(OptimusCCConfig.cb(rank=2), loader, small_config)
        assert all(hook is not None for hook in trainer.cb_hooks)
        trainer.train(num_iterations=2, validation_interval=2)
        assert trainer.compression_summary["transfers"] > 0

    def test_sc_hook_shared(self, small_config, loader):
        trainer = make_trainer(
            OptimusCCConfig.cb_fe_sc(cb_rank=2, dp_rank=2, stage_fraction=0.5), loader, small_config
        )
        trainer.train(num_iterations=2, validation_interval=2)
        assert trainer.dp_hook is not None
        assert trainer.dp_hook.total_payload_bytes > 0
        assert trainer.weights_in_sync()

    def test_lr_schedule_applied(self, small_config, loader):
        from repro.optim import CosineWithWarmup

        schedule = CosineWithWarmup(max_lr=1e-2, warmup_iterations=2, total_iterations=10)
        trainer = make_trainer(
            OptimusCCConfig.baseline(), loader, small_config, lr_schedule=schedule
        )
        trainer.train_iteration()
        assert trainer.optimizers[0].lr == pytest.approx(schedule.lr_at(0))

    def test_communication_log_categories(self, small_config, loader):
        trainer = make_trainer(OptimusCCConfig.baseline(), loader, small_config)
        trainer.train_iteration()
        categories = trainer.log.by_category()
        assert "inter_stage_forward" in categories
        assert "inter_stage_backward" in categories
        assert "data_parallel" in categories
        assert "embedding_dp" in categories  # unfused baseline path
        assert "embedding_sync" in categories

    def test_fused_embedding_removes_embedding_dp_traffic(self, small_config, loader):
        trainer = make_trainer(OptimusCCConfig.cb_fe(rank=2), loader, small_config)
        trainer.train_iteration()
        categories = trainer.log.by_category()
        assert "embedding_dp" not in categories
        assert "embedding_sync" in categories

    def test_invalid_arguments_raise(self, small_config, loader):
        with pytest.raises(ValueError):
            Pretrainer(small_config, loader, num_stages=0)
        trainer = make_trainer(OptimusCCConfig.baseline(), loader, small_config)
        with pytest.raises(ValueError):
            trainer.train(num_iterations=0)

    def test_zero_shot_evaluation_runs(self, small_config, loader, corpus):
        trainer = make_trainer(OptimusCCConfig.baseline(), loader, small_config)
        trainer.train(num_iterations=2, validation_interval=2)
        tasks = build_zero_shot_suite(corpus, examples_per_task=4)
        accuracies = trainer.evaluate_zero_shot(tasks)
        assert set(accuracies) == {task.name for task in tasks}
        assert all(0.0 <= value <= 1.0 for value in accuracies.values())


class TestZeroShotEvaluator:
    def test_reports_and_degradation(self, corpus):
        tasks = build_zero_shot_suite(corpus, examples_per_task=6)
        evaluator = ZeroShotEvaluator(tasks)
        rng = np.random.default_rng(0)

        def random_model(token_ids):
            return rng.normal(size=(*token_ids.shape, corpus.config.vocab_size))

        report = evaluator.evaluate(random_model)
        assert set(report.accuracies) == {task.name for task in tasks}
        assert 0.0 <= report.mean_accuracy <= 1.0
        degradation = report.degradation_from(report)
        assert all(value == pytest.approx(0.0) for value in degradation.values())

    def test_evaluate_many(self, corpus):
        tasks = build_zero_shot_suite(corpus, examples_per_task=4)
        evaluator = ZeroShotEvaluator(tasks)
        rng = np.random.default_rng(1)

        def model(token_ids):
            return rng.normal(size=(*token_ids.shape, corpus.config.vocab_size))

        reports = evaluator.evaluate_many({"a": model, "b": model})
        assert set(reports) == {"a", "b"}

    def test_chance_accuracies(self, corpus):
        tasks = build_zero_shot_suite(corpus, examples_per_task=4)
        chance = ZeroShotEvaluator(tasks).chance_accuracies()
        assert chance["synthetic-mathqa"] == pytest.approx(0.25)
        assert chance["synthetic-piqa"] == pytest.approx(0.5)

    def test_empty_tasks_raise(self):
        with pytest.raises(ValueError):
            ZeroShotEvaluator([])
