"""Tests for the resilience subsystem: deterministic fault injection, the
guarded training loop (detect / rollback / skip / retry / degrade), bit-exact
format-v2 checkpointing, and the plan/CLI/simulator seams they thread through.

The load-bearing invariants:

* a fault-free guarded run is bit-identical to the unguarded run;
* a poisoned iteration is skipped with post-rollback weights bit-identical to
  the previous iteration's;
* crash + ``--resume`` reproduces the continuous run's final weights
  bit-for-bit for every DP codec, with and without error feedback;
* under *any* fault schedule the guarded loop either finishes with finite
  weights or raises loudly (``ResilienceExhausted`` / ``WorkerCrash``) — it
  never silently corrupts the model (hypothesis-fuzzed).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import LanguageModelingDataLoader, SyntheticCorpus, SyntheticCorpusConfig
from repro.models.gpt_configs import functional_config
from repro.plan import Boundary, ParallelPlan, ResilienceSpec
from repro.resilience import (
    FaultInjector,
    FaultSpec,
    GuardrailPolicy,
    ResilienceExhausted,
    ResilienceReport,
    WorkerCrash,
    parse_fault_spec,
)
from repro.training.checkpoint import (
    checkpoint_name,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.training.trainer import Pretrainer

DP_CODECS = ("none", "powersgd", "qsgd", "topk")


def _loader(dp: int = 2, micro_batches: int = 2) -> LanguageModelingDataLoader:
    corpus = SyntheticCorpus(SyntheticCorpusConfig(vocab_size=64, seed=321))
    return LanguageModelingDataLoader(
        corpus,
        sequence_length=12,
        micro_batch_size=2,
        num_micro_batches=micro_batches,
        data_parallel_degree=dp,
    )


def _plan(codec: str = "powersgd", error_feedback: bool = True,
          dp: int = 2, pp: int = 2) -> ParallelPlan:
    plan = (
        ParallelPlan.preset("cb_fe_sc")
        .with_topology(pp=pp, dp=dp, micro_batches=2)
        .proxy_scaled()
    )
    # min_elements=0 + full stage fraction so the codec touches every gradient
    # on the tiny probe — otherwise the codec tests would be vacuous.
    return plan.with_boundary(
        Boundary.DP,
        codec=codec,
        error_feedback=error_feedback,
        min_elements=0,
        stage_fraction=1.0,
    )


def _trainer(plan: ParallelPlan) -> Pretrainer:
    model = functional_config(
        vocab_size=64, sequence_length=16, num_layers=plan.topology.pp,
        hidden_size=16, num_heads=2,
    )
    return Pretrainer(
        model, _loader(plan.topology.dp, plan.topology.micro_batches), plan=plan, seed=0
    )


def _weights(trainer: Pretrainer) -> list[np.ndarray]:
    return [arena.data.copy() for arena in trainer.engine.arenas]


def _assert_same_weights(a: list[np.ndarray], b: list[np.ndarray]) -> None:
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert np.array_equal(left, right)  # bit-exact, no tolerance


# ----------------------------------------------------------------------------------
# Fault-spec grammar
# ----------------------------------------------------------------------------------


class TestFaultSpecParsing:
    def test_parse_full_spec(self):
        spec = parse_fault_spec("nan@3:replica=1,stage=0")
        assert spec == FaultSpec(kind="nan", iteration=3, replica=1, stage=0)

    def test_parse_collective_count(self):
        spec = parse_fault_spec("collective@2:count=2")
        assert spec.kind == "collective"
        assert spec.iteration == 2
        assert spec.count == 2

    def test_parse_bare_crash(self):
        assert parse_fault_spec("crash@5") == FaultSpec(kind="crash", iteration=5)

    @pytest.mark.parametrize("text", [
        "nan",                      # missing @iteration
        "meteor@3",                 # unknown kind
        "nan@-1",                   # negative iteration
        "nan@2:wormhole=1",         # unknown knob
        "nan@2:replica=x",          # non-integer value
        "collective@1:count=0",     # count must be positive
        "nan@1:elements=0",         # elements must be positive
    ])
    def test_invalid_specs_rejected(self, text):
        with pytest.raises(ValueError):
            parse_fault_spec(text)

    def test_describe_mentions_kind_and_iteration(self):
        text = parse_fault_spec("inf@4:replica=1").describe()
        assert "inf" in text and "4" in text


class TestGuardrailPolicy:
    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            GuardrailPolicy(max_collective_retries=-1)
        with pytest.raises(ValueError):
            GuardrailPolicy(max_consecutive_skips=-1)
        with pytest.raises(ValueError):
            GuardrailPolicy(max_grad_norm=0.0)

    def test_report_delta_and_copy(self):
        report = ResilienceReport()
        before = report.copy()
        report.record_fault("nan")
        report.skipped_steps += 1
        delta = report.delta_since(before)
        assert delta.faults_injected == {"nan": 1}
        assert delta.skipped_steps == 1
        assert before.faults_injected == {}

    def test_report_dict_round_trip(self):
        report = ResilienceReport()
        report.record_fault("collective")
        report.collective_retries = 2
        report.backoff_seconds = 1.5
        restored = ResilienceReport.from_dict(report.to_dict())
        assert restored.to_dict() == report.to_dict()


class TestFaultInjectorDeterminism:
    def test_same_seed_same_corruption_positions(self):
        spec = ("nan@0:replica=0,stage=0,elements=3",)
        poisoned = []
        for _ in range(2):
            trainer = _trainer(_plan().with_resilience(ResilienceSpec(faults=spec)))
            injector = FaultInjector(spec, seed=7)
            trainer.engine.fault_injector = injector
            trainer.train_iteration()
            poisoned.append(_weights(trainer))
        _assert_same_weights(poisoned[0], poisoned[1])


# ----------------------------------------------------------------------------------
# Guarded loop: parity, rollback, retry, budgets
# ----------------------------------------------------------------------------------


class TestGuardedParity:
    def test_fault_free_guarded_matches_unguarded(self):
        guarded = _trainer(_plan().with_resilience(ResilienceSpec()))
        unguarded = _trainer(_plan())
        guarded_result = guarded.train(4)
        unguarded_result = unguarded.train(4)
        _assert_same_weights(_weights(guarded), _weights(unguarded))
        assert guarded_result.resilience is not None
        assert not guarded_result.resilience.any_events
        assert unguarded_result.resilience is None

    @pytest.mark.parametrize("kind", ["nan", "inf"])
    def test_poisoned_step_rolls_back_to_previous_weights(self, kind):
        spec = ResilienceSpec(faults=(f"{kind}@2:replica=1,stage=0",))
        trainer = _trainer(_plan().with_resilience(spec))
        trainer.train_iteration()
        trainer.train_iteration()
        before_fault = _weights(trainer)

        loss = trainer.train_iteration()  # iteration 2: poisoned, skipped
        report = trainer.resilience_report
        assert report.faults_injected == {kind: 1}
        assert report.skipped_steps == 1
        assert report.rollbacks == 1
        assert np.isfinite(loss)
        # The skipped iteration leaves the model exactly where iteration 1 did.
        _assert_same_weights(_weights(trainer), before_fault)
        # Skipped steps do not pollute the training history ...
        assert len(trainer.history.train_losses) == 2
        # ... but the iteration counter still advances, so the fault never re-fires.
        assert trainer._iteration == 3
        trainer.train_iteration()
        assert report.skipped_steps == 1
        assert len(trainer.history.train_losses) == 3

    def test_grad_norm_cap_skips_every_step(self):
        spec = ResilienceSpec(max_grad_norm=1e-12)
        trainer = _trainer(_plan().with_resilience(spec))
        initial = _weights(trainer)
        for _ in range(3):
            trainer.train_iteration()
        assert trainer.resilience_report.skipped_steps == 3
        _assert_same_weights(_weights(trainer), initial)

    def test_consecutive_skip_budget_exhausts(self):
        spec = ResilienceSpec(
            faults=("nan@0:replica=0", "nan@1:replica=0"), max_consecutive_skips=1
        )
        trainer = _trainer(_plan().with_resilience(spec))
        trainer.train_iteration()  # first skip: within budget
        with pytest.raises(ResilienceExhausted):
            trainer.train_iteration()

    def test_collective_fault_retried_with_backoff(self):
        spec = ResilienceSpec(faults=("collective@1:count=2",))
        trainer = _trainer(_plan().with_resilience(spec))
        trainer.train(3)
        report = trainer.resilience_report
        assert report.collective_retries == 2
        assert report.faults_injected["collective"] == 2
        # Exponential backoff: 0.5 * 2**0 + 0.5 * 2**1.
        assert report.backoff_seconds == pytest.approx(1.5)
        assert report.skipped_steps == 0  # retries succeed; no rollback needed

    def test_collective_fault_exhausts_retry_budget(self):
        spec = ResilienceSpec(faults=("collective@0:count=5",), max_collective_retries=3)
        trainer = _trainer(_plan().with_resilience(spec))
        with pytest.raises(ResilienceExhausted):
            trainer.train_iteration()


class TestCrashAndDegrade:
    def test_crash_raises_worker_crash(self):
        trainer = _trainer(_plan().with_resilience(ResilienceSpec(faults=("crash@1",))))
        trainer.train_iteration()
        with pytest.raises(WorkerCrash) as excinfo:
            trainer.train_iteration()
        assert excinfo.value.iteration == 1
        assert trainer.resilience_report.faults_injected == {"crash": 1}

    def test_replica_loss_shrinks_dp_group(self):
        spec = ResilienceSpec(faults=("replica_loss@2:replica=1",))
        trainer = _trainer(_plan().with_resilience(spec))
        result = trainer.train(4)
        assert len(trainer.engine.arenas) == 1
        assert len(trainer.optimizers) == 1
        assert trainer.engine.data_parallel_degree == 1
        assert result.resilience.degraded == [
            {"iteration": 2, "replica": 1, "data_parallel_degree": 1}
        ]
        for arena in trainer.engine.arenas:
            assert np.isfinite(arena.data).all()
        # The surviving replica keeps training on its original loader shard.
        assert trainer._replica_ids == [0]
        assert len(trainer.history.train_losses) == 4

    def test_losing_the_last_replica_exhausts(self):
        spec = ResilienceSpec(
            faults=("replica_loss@1:replica=1", "replica_loss@2:replica=0")
        )
        trainer = _trainer(_plan().with_resilience(spec))
        trainer.train_iteration()
        trainer.train_iteration()  # drops replica 1, dp -> 1
        with pytest.raises(ResilienceExhausted):
            trainer.train_iteration()


# ----------------------------------------------------------------------------------
# Checkpoint v2: bit-exact round trips
# ----------------------------------------------------------------------------------


class TestCheckpointRoundTrip:
    @pytest.mark.parametrize("error_feedback", [True, False])
    @pytest.mark.parametrize("codec", DP_CODECS)
    def test_resume_is_bit_exact(self, codec, error_feedback, tmp_path):
        """train(6) continuous == train(3) + save + fresh load + train(3)."""
        plan = _plan(codec=codec, error_feedback=error_feedback)
        continuous = _trainer(plan)
        continuous.train(6)

        first = _trainer(plan)
        first.train(3)
        path = save_checkpoint(first, tmp_path / "ckpt.npz")

        resumed = _trainer(plan)
        assert load_checkpoint(resumed, path) == 3
        resumed.train(3)
        _assert_same_weights(_weights(resumed), _weights(continuous))
        assert resumed.history.train_losses == continuous.history.train_losses

    @pytest.mark.parametrize("codec", DP_CODECS)
    def test_crash_then_resume_matches_continuous(self, codec, tmp_path):
        """The ISSUE acceptance path: crash at k + --resume == continuous run."""
        plan = _plan(codec=codec, error_feedback=True)
        continuous = _trainer(plan)
        continuous.train(4)

        crashing = _trainer(plan.with_resilience(ResilienceSpec(faults=("crash@2",))))
        with pytest.raises(WorkerCrash):
            crashing.train(4, checkpoint_every=1, checkpoint_dir=tmp_path)

        checkpoint = latest_checkpoint(tmp_path)
        assert checkpoint is not None and checkpoint.name == checkpoint_name(2)
        resumed = _trainer(plan)
        assert load_checkpoint(resumed, checkpoint) == 2
        resumed.train(2)
        _assert_same_weights(_weights(resumed), _weights(continuous))

    def test_state_survives_round_trip(self, tmp_path):
        """EF residuals, RNG call counts, and Q warm starts are all restored."""
        trainer = _trainer(_plan(codec="powersgd"))
        trainer.train(3)
        path = save_checkpoint(trainer, tmp_path / "ckpt")
        other = _trainer(_plan(codec="powersgd"))
        load_checkpoint(other, path)
        ours = trainer.engine.mutable_state()
        theirs = other.engine.mutable_state()

        def _equal(a, b):
            if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
                return isinstance(a, np.ndarray) and isinstance(b, np.ndarray) and np.array_equal(a, b)
            if isinstance(a, dict) and isinstance(b, dict):
                return a.keys() == b.keys() and all(_equal(a[k], b[k]) for k in a)
            if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
                return len(a) == len(b) and all(_equal(x, y) for x, y in zip(a, b))
            return a == b

        assert _equal(ours, theirs)


class TestCheckpointValidation:
    def test_config_mismatch_rejected(self, tmp_path):
        writer = _trainer(_plan(codec="powersgd"))
        writer.train_iteration()
        path = save_checkpoint(writer, tmp_path / "ckpt.npz")
        reader = _trainer(_plan(codec="qsgd"))
        with pytest.raises(ValueError, match="configuration"):
            load_checkpoint(reader, path)

    def test_topology_mismatch_rejected(self, tmp_path):
        writer = _trainer(_plan(dp=2))
        writer.train_iteration()
        path = save_checkpoint(writer, tmp_path / "ckpt.npz")
        reader = _trainer(_plan(dp=1))
        with pytest.raises(ValueError, match="topology"):
            load_checkpoint(reader, path)

    @staticmethod
    def _tamper_header(path, mutate):
        with np.load(path, allow_pickle=False) as archive:
            data = {key: archive[key] for key in archive.files}
        header = json.loads(bytes(data["__header__"].tobytes()).decode("utf-8"))
        mutate(header)
        data["__header__"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        np.savez(path, **data)

    def test_v1_checkpoint_rejected_loudly(self, tmp_path):
        trainer = _trainer(_plan())
        trainer.train_iteration()
        path = save_checkpoint(trainer, tmp_path / "ckpt.npz")
        self._tamper_header(path, lambda h: h.update(format_version=1))
        with pytest.raises(ValueError, match="bit-exactly"):
            load_checkpoint(_trainer(_plan()), path)

    def test_optimizer_steps_length_checked(self, tmp_path):
        """The strict zip catches a header listing the wrong optimizer count."""
        trainer = _trainer(_plan())
        trainer.train_iteration()
        path = save_checkpoint(trainer, tmp_path / "ckpt.npz")
        self._tamper_header(
            path, lambda h: h.update(optimizer_steps=h["optimizer_steps"][:-1])
        )
        with pytest.raises(ValueError):
            load_checkpoint(_trainer(_plan()), path)

    def test_optimizer_steps_value_checked(self, tmp_path):
        trainer = _trainer(_plan())
        trainer.train_iteration()
        path = save_checkpoint(trainer, tmp_path / "ckpt.npz")
        self._tamper_header(
            path, lambda h: h.update(optimizer_steps=[s + 1 for s in h["optimizer_steps"]])
        )
        with pytest.raises(ValueError, match="inconsistent"):
            load_checkpoint(_trainer(_plan()), path)


class TestCheckpointFiles:
    def test_write_is_atomic_no_tmp_leftover(self, tmp_path):
        trainer = _trainer(_plan())
        trainer.train_iteration()
        path = save_checkpoint(trainer, tmp_path / "ckpt")
        assert path.suffix == ".npz" and path.exists()
        assert not list(tmp_path.glob("*.tmp-*"))

    def test_rotation_keeps_last_k(self, tmp_path):
        trainer = _trainer(_plan())
        trainer.train(5, checkpoint_every=1, checkpoint_dir=tmp_path, keep_last=2)
        names = sorted(p.name for p in tmp_path.glob("ckpt-*.npz"))
        assert names == [checkpoint_name(4), checkpoint_name(5)]
        assert latest_checkpoint(tmp_path).name == checkpoint_name(5)

    def test_latest_checkpoint_empty_directory(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None


# ----------------------------------------------------------------------------------
# Plan / CLI / simulator seams
# ----------------------------------------------------------------------------------


class TestPlanResilienceSection:
    def test_json_round_trip(self):
        plan = _plan().with_resilience(
            ResilienceSpec(faults=("nan@3:replica=1",), max_grad_norm=10.0, seed=5)
        )
        assert ParallelPlan.from_json(plan.to_json()) == plan
        assert "resilience" in plan.to_dict()

    def test_plans_without_resilience_omit_the_section(self):
        plan = _plan()
        assert "resilience" not in plan.to_dict()
        assert ParallelPlan.from_json(plan.to_json()) == plan

    def test_resilience_participates_in_hash_and_eq(self):
        bare = _plan()
        armed = bare.with_resilience(ResilienceSpec(faults=("nan@1",)))
        assert bare != armed
        assert hash(bare) != hash(armed) or bare == armed  # hashable either way
        assert hash(armed) == hash(armed.with_resilience(ResilienceSpec(faults=("nan@1",))))

    def test_from_dict_rejects_unknown_resilience_keys(self):
        payload = _plan().to_dict()
        payload["resilience"] = {"faults": [], "wormhole": 1}
        with pytest.raises(ValueError):
            ParallelPlan.from_dict(payload)

    def test_invalid_fault_strings_rejected_eagerly(self):
        with pytest.raises(ValueError):
            ResilienceSpec(faults=("nan",))
        with pytest.raises(ValueError):
            ResilienceSpec(faults=("meteor@1",))

    def test_cli_flags_arm_the_plan(self):
        from repro.cli import build_parser, build_train_plan

        parser = build_parser()
        arguments = parser.parse_args(
            ["train", "--preset", "cb_fe_sc", "--guard",
             "--inject-fault", "nan@2:replica=1", "--max-grad-norm", "5.0",
             "--fault-seed", "9"]
        )
        plan = build_train_plan(arguments)
        assert plan.resilience is not None
        assert plan.resilience.faults == ("nan@2:replica=1",)
        assert plan.resilience.max_grad_norm == 5.0
        assert plan.resilience.seed == 9

    def test_cli_unarmed_by_default(self):
        from repro.cli import build_parser, build_train_plan

        arguments = build_parser().parse_args(["train", "--preset", "cb_fe_sc"])
        assert build_train_plan(arguments).resilience is None


class TestSimulatorRecoveryOverhead:
    def test_recovery_overhead_adds_to_iteration_time(self):
        from repro.models import GPT_2_5B
        from repro.simulator import TrainingJob
        from repro.simulator.executor import CompressionPlan, simulate_plan

        job = TrainingJob(model=GPT_2_5B)
        base = simulate_plan(job, CompressionPlan.cb_fe_sc())
        padded = simulate_plan(job, CompressionPlan.cb_fe_sc(), resilience_overhead_s=0.5)
        assert base.recovery_overhead == 0.0
        assert padded.recovery_overhead == 0.5
        assert padded.iteration_time == pytest.approx(base.iteration_time + 0.5)

    def test_negative_overhead_rejected(self):
        from repro.models import GPT_2_5B
        from repro.simulator import TrainingJob
        from repro.simulator.executor import CompressionPlan, simulate_plan

        with pytest.raises(ValueError):
            simulate_plan(
                TrainingJob(model=GPT_2_5B), CompressionPlan.cb_fe_sc(),
                resilience_overhead_s=-0.1,
            )


# ----------------------------------------------------------------------------------
# CI smoke + fuzz
# ----------------------------------------------------------------------------------


def test_fault_injection_smoke():
    """The CI fast-tier smoke: one NaN + one transient collective fault in a
    2x2 run must produce exactly one skip and one retry, then finish."""
    spec = ResilienceSpec(faults=("nan@1:replica=1,stage=0", "collective@2:count=1"))
    trainer = _trainer(_plan(dp=2, pp=2).with_resilience(spec))
    result = trainer.train(4)
    report = result.resilience
    assert report.skipped_steps == 1
    assert report.rollbacks == 1
    assert report.collective_retries == 1
    assert report.faults_injected == {"nan": 1, "collective": 1}
    assert len(trainer.history.train_losses) == 3  # the poisoned step is skipped
    for arena in trainer.engine.arenas:
        assert np.isfinite(arena.data).all()


@st.composite
def fault_schedules(draw):
    faults = []
    for _ in range(draw(st.integers(0, 3))):
        kind = draw(st.sampled_from(["nan", "inf", "collective", "crash", "replica_loss"]))
        iteration = draw(st.integers(0, 3))
        if kind in ("nan", "inf"):
            replica = draw(st.integers(0, 1))
            stage = draw(st.integers(0, 1))
            elements = draw(st.integers(1, 4))
            faults.append(f"{kind}@{iteration}:replica={replica},stage={stage},elements={elements}")
        elif kind == "collective":
            faults.append(f"collective@{iteration}:count={draw(st.integers(1, 5))}")
        elif kind == "replica_loss":
            faults.append(f"replica_loss@{iteration}:replica={draw(st.integers(0, 1))}")
        else:
            faults.append(f"crash@{iteration}")
    return tuple(faults)


class TestFuzzedFaultSchedules:
    @given(faults=fault_schedules(), seed=st.integers(0, 3))
    @settings(max_examples=12, deadline=None)
    def test_guarded_loop_never_silently_corrupts(self, faults, seed):
        """Under any schedule: finish with finite weights, or raise loudly."""
        spec = ResilienceSpec(faults=faults, seed=seed)
        trainer = _trainer(_plan().with_resilience(spec))
        try:
            trainer.train(4)
        except (ResilienceExhausted, WorkerCrash):
            pass  # loud failure is inside the contract
        for arena in trainer.engine.arenas:
            assert np.isfinite(arena.data).all()
        assert trainer.weights_in_sync()
