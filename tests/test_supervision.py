"""Chaos suite for the self-healing process execution layer (``repro.exec.supervisor``).

The contract under test:

* **bit-exact healing** — a supervised run that loses workers to injected
  crashes, injected hangs, or *external* SIGKILL/SIGSTOP produces final
  weights, losses, and traffic records identical to an undisturbed serial
  run, for every plan preset and (fuzzed) for fault schedules x layouts x
  schedules x DP codecs;
* **watchdog** — a wedged worker is surfaced as :class:`WorkerTimeout` even
  without supervision (no unbounded ``Connection.recv`` wait anywhere);
* **loud escalation** — a spent respawn budget degrades the DP group (elastic
  shrink, run completes) or checkpoint-aborts (final checkpoint written,
  :class:`ResilienceExhausted` raised); never a silent wrong answer;
* **ledger** — every respawn/degrade lands in the :class:`ResilienceReport`
  with per-worker attribution and survives checkpoint round-trips;
* **hygiene** — no orphaned worker processes and no leaked ``/dev/shm``
  segments, including after chaos.
"""

from __future__ import annotations

import json
import multiprocessing.shared_memory as shared_memory
import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cli
from repro.data import LanguageModelingDataLoader, SyntheticCorpus, SyntheticCorpusConfig
from repro.models.gpt_configs import functional_config
from repro.plan import PLAN_PRESETS, Boundary, ParallelPlan, ResilienceSpec
from repro.resilience import (
    FaultInjector,
    ResilienceExhausted,
    ResilienceReport,
    SupervisionPolicy,
    WorkerCrash,
    WorkerTimeout,
)
from repro.training.checkpoint import latest_checkpoint, load_checkpoint, save_checkpoint
from repro.training.trainer import Pretrainer


def probe_plan(
    preset: str = "cb_fe_sc",
    dp: int = 2,
    pp: int = 2,
    executor: str = "process",
    schedule: str | None = None,
    codec: str | None = None,
) -> ParallelPlan:
    plan = (
        ParallelPlan.preset(preset)
        .with_topology(pp=pp, dp=dp, micro_batches=2)
        .proxy_scaled()
    )
    if schedule is not None:
        plan = plan.with_schedule(kind=schedule)
    if codec is not None:
        # Tiny probe parameters: force the codec to engage on every gradient.
        plan = plan.with_boundary(
            Boundary.DP,
            codec=codec,
            error_feedback=True,
            min_elements=1,
            stage_fraction=1.0,
            **({"rank": 2} if codec == "powersgd" else {}),
        )
    return plan.with_executor(executor)


def probe_trainer(plan: ParallelPlan, seed: int = 0) -> Pretrainer:
    model = functional_config(
        vocab_size=64,
        sequence_length=16,
        num_layers=plan.topology.pp,
        hidden_size=16,
        num_heads=2,
    )
    corpus = SyntheticCorpus(SyntheticCorpusConfig(vocab_size=64, seed=321))
    loader = LanguageModelingDataLoader(
        corpus,
        sequence_length=12,
        micro_batch_size=2,
        num_micro_batches=plan.topology.micro_batches,
        data_parallel_degree=plan.topology.dp,
    )
    return Pretrainer(model, loader, plan=plan, seed=seed)


def run_trainer(trainer: Pretrainer, iterations: int):
    """Train ``iterations`` steps; returns (losses, weights, records)."""
    losses = []
    with trainer:
        for _ in range(iterations):
            losses.append(trainer.train_iteration())
        weights = [arena.data.copy() for arena in trainer.engine.arenas]
        records = [
            (record.operation, record.category, record.wire_bytes, record.compressed)
            for record in trainer.engine.log.records
        ]
    return losses, weights, records


def serial_oracle(iterations: int, **plan_kwargs):
    """An undisturbed, unsupervised serial run of the same probe."""
    plan_kwargs["executor"] = "serial"
    return run_trainer(probe_trainer(probe_plan(**plan_kwargs)), iterations)


def assert_same_weights(actual, expected) -> None:
    assert len(actual) == len(expected)
    for left, right in zip(actual, expected):
        assert np.array_equal(left, right)  # bit-exact, no tolerance


def assert_no_orphans(processes, segment_names) -> None:
    assert all(not process.is_alive() for process in processes)
    for name in segment_names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


# ----------------------------------------------------------------------------------
# Respawn recovery: healed runs are bit-identical to undisturbed serial runs
# ----------------------------------------------------------------------------------


class TestRespawnRecovery:
    @pytest.mark.parametrize("preset", sorted(PLAN_PRESETS))
    def test_crash_recovery_bit_identical_every_preset(self, preset):
        """ISSUE acceptance: recovery is bit-for-bit for every plan preset."""
        spec = ResilienceSpec(faults=("crash@1:replica=1",))
        trainer = probe_trainer(probe_plan(preset).with_resilience(spec))
        losses, weights, records = run_trainer(trainer, 3)
        report = trainer.resilience_report
        assert report.respawns == 1
        assert report.faults_injected.get("crash") == 1
        assert report.worker_events[-1]["action"] == "respawn"
        assert report.worker_events[-1]["replica"] == 1
        oracle = serial_oracle(3, preset=preset)
        assert losses == oracle[0]
        assert_same_weights(weights, oracle[1])
        assert records == oracle[2]

    def test_hang_recovery_bit_identical(self):
        """An injected wedge trips the watchdog, gets respawned, and heals."""
        spec = ResilienceSpec(faults=("hang@1",), worker_timeout=1.0)
        trainer = probe_trainer(probe_plan().with_resilience(spec))
        losses, weights, _ = run_trainer(trainer, 3)
        report = trainer.resilience_report
        assert report.respawns == 1
        assert report.faults_injected.get("hang") == 1
        assert report.worker_events[-1]["kind"] == "hang"
        oracle = serial_oracle(3)
        assert losses == oracle[0]
        assert_same_weights(weights, oracle[1])

    def test_two_workers_fail_same_iteration(self):
        """One crash plus one hang in the same step: both respawn, still exact."""
        spec = ResilienceSpec(
            faults=("crash@1:replica=0", "hang@1:replica=1"), worker_timeout=1.0
        )
        trainer = probe_trainer(probe_plan().with_resilience(spec))
        losses, weights, _ = run_trainer(trainer, 3)
        report = trainer.resilience_report
        assert report.respawns == 2
        assert report.faults_injected.get("crash") == 1
        assert report.faults_injected.get("hang") == 1
        oracle = serial_oracle(3)
        assert losses == oracle[0]
        assert_same_weights(weights, oracle[1])

    def test_external_sigkill_between_iterations_recovers(self):
        """A worker killed while *idle* (post-step state lost with the process)
        is healed from the supervisor's CB-state cache — still bit-exact."""
        trainer = probe_trainer(probe_plan().with_resilience(ResilienceSpec()))
        with trainer:
            losses = [trainer.train_iteration()]
            executor = trainer.engine._process_executor
            os.kill(executor._processes[0].pid, signal.SIGKILL)
            losses.append(trainer.train_iteration())
            losses.append(trainer.train_iteration())
            weights = [arena.data.copy() for arena in trainer.engine.arenas]
        report = trainer.resilience_report
        assert report.respawns == 1
        # An external kill matches no injected spec: respawned, not tallied.
        assert report.faults_injected.get("crash") is None
        oracle = serial_oracle(3)
        assert losses == oracle[0]
        assert_same_weights(weights, oracle[1])

    def test_external_sigstop_wedge_recovers(self):
        """A genuinely stopped worker (not injected): watchdog + respawn heal it."""
        spec = ResilienceSpec(worker_timeout=1.0)
        trainer = probe_trainer(probe_plan().with_resilience(spec))
        with trainer:
            losses = [trainer.train_iteration()]
            executor = trainer.engine._process_executor
            os.kill(executor._processes[1].pid, signal.SIGSTOP)
            losses.append(trainer.train_iteration())
            losses.append(trainer.train_iteration())
            weights = [arena.data.copy() for arena in trainer.engine.arenas]
        report = trainer.resilience_report
        assert report.respawns == 1
        assert report.worker_events[-1]["kind"] == "hang"
        oracle = serial_oracle(3)
        assert losses == oracle[0]
        assert_same_weights(weights, oracle[1])


# ----------------------------------------------------------------------------------
# Hang watchdog without supervision (the unbounded-recv fix)
# ----------------------------------------------------------------------------------


class TestHangWatchdog:
    def test_unsupervised_wedge_raises_worker_timeout(self):
        """Even with no resilience spec armed, a silent worker surfaces as a
        loud WorkerTimeout after the deadline — never an unbounded wait."""
        trainer = probe_trainer(probe_plan())  # process executor, unsupervised
        with trainer:
            trainer.train_iteration()
            executor = trainer.engine._process_executor
            executor.worker_timeout = 0.5
            victim = executor._processes[1]
            os.kill(victim.pid, signal.SIGSTOP)
            with pytest.raises(WorkerTimeout) as exc_info:
                trainer.train_iteration()
            assert exc_info.value.replica == 1
            # A stopped worker is unrecoverable without the supervisor: retire
            # it so teardown does not wait out the shutdown handshake.
            executor.kill_worker(1)

    def test_worker_timeout_is_a_worker_crash(self):
        assert issubclass(WorkerTimeout, WorkerCrash)

    def test_serial_crash_still_fires_parent_side(self):
        """Under the serial executor a scheduled crash stays the simulated
        parent-side death (restartable via --resume), exactly as before."""
        spec = ResilienceSpec(faults=("crash@1",))
        trainer = probe_trainer(probe_plan(executor="serial").with_resilience(spec))
        with trainer:
            trainer.train_iteration()
            with pytest.raises(WorkerCrash):
                trainer.train_iteration()


# ----------------------------------------------------------------------------------
# Escalation: degrade / checkpoint_abort when the budget is spent
# ----------------------------------------------------------------------------------


class TestEscalation:
    def test_budget_exhausted_degrades_and_completes(self):
        """Third crash on the same worker with a 2-respawn budget: the ladder
        drops the replica (elastic DP shrink) and the run completes."""
        spec = ResilienceSpec(
            faults=("crash@1:replica=1", "crash@2:replica=1", "crash@3:replica=1"),
            max_respawns_per_worker=2,
        )
        trainer = probe_trainer(probe_plan().with_resilience(spec))
        losses, weights, _ = run_trainer(trainer, 5)
        report = trainer.resilience_report
        assert len(losses) == 5
        assert len(weights) == 1  # dp 2 -> 1
        assert report.respawns == 2
        assert report.faults_injected.get("crash") == 3
        assert report.worker_events[-1]["action"] == "degrade"
        assert report.degraded[-1]["data_parallel_degree"] == 1
        # A budget-spent degrade is not an *injected* replica loss.
        assert report.faults_injected.get("replica_loss") is None
        assert all(np.isfinite(w).all() for w in weights)

    def test_total_budget_caps_across_workers(self):
        """max_total_respawns bounds the whole job, not just one worker."""
        spec = ResilienceSpec(
            faults=("crash@1:replica=0", "crash@2:replica=1"),
            max_respawns_per_worker=5,
            max_total_respawns=1,
        )
        trainer = probe_trainer(probe_plan().with_resilience(spec))
        losses, weights, _ = run_trainer(trainer, 4)
        report = trainer.resilience_report
        assert len(losses) == 4
        assert report.respawns == 1
        assert report.worker_events[-1]["action"] == "degrade"
        assert len(weights) == 1

    def test_injected_replica_loss_degrades_like_serial(self):
        """A scheduled permanent loss under the process executor (the worker
        really dies) matches the serial degrade path bit-for-bit."""
        spec = ResilienceSpec(faults=("replica_loss@2:replica=1",))
        process_trainer = probe_trainer(probe_plan().with_resilience(spec))
        process_run = run_trainer(process_trainer, 4)
        serial_trainer = probe_trainer(probe_plan(executor="serial").with_resilience(spec))
        serial_run = run_trainer(serial_trainer, 4)
        assert process_run[0] == serial_run[0]
        assert_same_weights(process_run[1], serial_run[1])
        assert process_trainer.resilience_report.faults_injected.get("replica_loss") == 1
        assert serial_trainer.resilience_report.faults_injected.get("replica_loss") == 1
        # No respawn was attempted: the loss is permanent by schedule.
        assert process_trainer.resilience_report.respawns == 0

    def test_losing_the_last_replica_raises(self):
        """Degrading past dp=1 is a loud terminal failure, not a hang."""
        spec = ResilienceSpec(faults=("crash@1",), max_respawns_per_worker=0)
        trainer = probe_trainer(probe_plan(dp=1).with_resilience(spec))
        with trainer:
            trainer.train_iteration()
            with pytest.raises(ResilienceExhausted, match="last data-parallel replica"):
                trainer.train_iteration()

    def test_checkpoint_abort_writes_final_checkpoint_and_resume_matches(self, tmp_path):
        """on_exhausted=checkpoint_abort: the pre-iteration state is written as
        a final checkpoint, the raise is loud, and --resume-style continuation
        from that checkpoint reproduces the undisturbed run bit-for-bit."""
        spec = ResilienceSpec(
            faults=("crash@2",),
            max_respawns_per_worker=0,
            on_exhausted="checkpoint_abort",
        )
        trainer = probe_trainer(probe_plan().with_resilience(spec))
        with trainer:
            with pytest.raises(ResilienceExhausted, match="checkpoint_abort"):
                trainer.train(5, checkpoint_every=1, checkpoint_dir=tmp_path)
        path = latest_checkpoint(tmp_path)
        assert path is not None and path.name == "ckpt-00000002.npz"

        resumed = probe_trainer(probe_plan(executor="serial"))
        assert load_checkpoint(resumed, path) == 2
        with resumed:
            while resumed._iteration < 5:
                resumed.train_iteration()
            weights = [arena.data.copy() for arena in resumed.engine.arenas]
        oracle = serial_oracle(5)
        assert_same_weights(weights, oracle[1])

    def test_checkpoint_abort_without_directory_still_raises(self):
        spec = ResilienceSpec(
            faults=("crash@1",),
            max_respawns_per_worker=0,
            on_exhausted="checkpoint_abort",
        )
        trainer = probe_trainer(probe_plan().with_resilience(spec))
        with trainer:
            trainer.train_iteration()
            with pytest.raises(ResilienceExhausted, match="no checkpoint directory"):
                trainer.train_iteration()


# ----------------------------------------------------------------------------------
# Ledger: per-worker attribution, checkpoint round-trip
# ----------------------------------------------------------------------------------


class TestLedger:
    def test_worker_events_survive_checkpoint_round_trip(self, tmp_path):
        spec = ResilienceSpec(faults=("crash@1:replica=1",))
        trainer = probe_trainer(probe_plan().with_resilience(spec))
        with trainer:
            for _ in range(3):
                trainer.train_iteration()
            path = save_checkpoint(trainer, tmp_path / "ckpt.npz")
            events = [dict(entry) for entry in trainer.resilience_report.worker_events]
            respawns = trainer.resilience_report.respawns
        assert respawns == 1 and events

        fresh = probe_trainer(probe_plan().with_resilience(spec))
        with fresh:
            assert load_checkpoint(fresh, path) == 3
            assert fresh.resilience_report.respawns == respawns
            assert fresh.resilience_report.worker_events == events

    def test_report_round_trip_and_describe(self):
        report = ResilienceReport()
        report.respawns = 2
        report.record_worker_event(
            kind="hang", replica=1, iteration=4, respawn_count=2, action="respawn"
        )
        restored = ResilienceReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert restored.respawns == 2
        assert restored.worker_events == report.worker_events
        assert "worker respawns: 2 (1 hangs)" in restored.describe()
        delta = restored.delta_since(ResilienceReport())
        assert delta.respawns == 2 and len(delta.worker_events) == 1


# ----------------------------------------------------------------------------------
# Plan / policy plumbing
# ----------------------------------------------------------------------------------


class TestSupervisionPlumbing:
    def test_hang_fault_requires_process_executor(self):
        spec = ResilienceSpec(faults=("hang@1",))
        with pytest.raises(ValueError, match="hang"):
            probe_plan(executor="serial").with_resilience(spec)
        plan = probe_plan(executor="process").with_resilience(spec)
        with pytest.raises(ValueError, match="hang"):
            plan.with_executor("serial")
        assert plan.resilience.requires_process_executor()

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ResilienceSpec(worker_timeout=0.0)
        with pytest.raises(ValueError):
            ResilienceSpec(max_respawns_per_worker=-1)
        with pytest.raises(ValueError):
            ResilienceSpec(max_total_respawns=-1)
        with pytest.raises(ValueError):
            ResilienceSpec(on_exhausted="explode")
        with pytest.raises(ValueError):
            SupervisionPolicy(worker_timeout=-1.0)
        with pytest.raises(ValueError):
            SupervisionPolicy(on_exhausted="explode")

    def test_spec_maps_to_policy(self):
        spec = ResilienceSpec(
            worker_timeout=5.0,
            max_respawns_per_worker=1,
            max_total_respawns=3,
            on_exhausted="checkpoint_abort",
        )
        policy = spec.supervision_policy()
        assert policy == SupervisionPolicy(
            worker_timeout=5.0,
            max_respawns_per_worker=1,
            max_total_respawns=3,
            on_exhausted="checkpoint_abort",
        )
        # Unset timeout inherits the policy default (60s), not None.
        assert ResilienceSpec().supervision_policy().worker_timeout == 60.0

    def test_supervision_fields_round_trip_through_json(self):
        plan = probe_plan().with_resilience(
            ResilienceSpec(
                faults=("hang@2",),
                worker_timeout=5.0,
                max_respawns_per_worker=1,
                max_total_respawns=3,
                on_exhausted="checkpoint_abort",
            )
        )
        restored = ParallelPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.resilience.worker_timeout == 5.0
        assert restored.resilience.on_exhausted == "checkpoint_abort"

    def test_describe_mentions_the_budget(self):
        text = ResilienceSpec(
            max_respawns_per_worker=1, max_total_respawns=3
        ).describe()
        assert "respawns<=1/worker" in text and "<=3 total" in text and "degrade" in text

    def test_worker_faults_filtering(self):
        injector = FaultInjector(
            ["crash@1:replica=1", "hang@3:replica=1", "crash@2:replica=0", "nan@1:replica=1"]
        )
        faults = injector.worker_faults(1)
        assert [spec.kind for spec in faults] == ["crash", "hang"]
        # A respawned worker must not re-fire the fault that killed it.
        faults = injector.worker_faults(1, after_iteration=1)
        assert [(spec.kind, spec.iteration) for spec in faults] == [("hang", 3)]

    def test_cli_flags_fold_into_the_spec(self):
        arguments = cli.build_parser().parse_args(
            [
                "train", "--preset", "cb_fe_sc", "--executor", "process",
                "--inject-fault", "hang@2", "--worker-timeout", "1.5",
                "--max-respawns", "1", "--on-exhausted", "checkpoint_abort",
            ]
        )
        plan = cli.build_train_plan(arguments)
        assert plan.executor == "process"
        assert plan.resilience.worker_timeout == 1.5
        assert plan.resilience.max_respawns_per_worker == 1
        assert plan.resilience.on_exhausted == "checkpoint_abort"

    def test_cli_rejects_hang_under_serial_executor(self):
        arguments = cli.build_parser().parse_args(
            ["train", "--preset", "cb_fe_sc", "--inject-fault", "hang@2"]
        )
        with pytest.raises(SystemExit, match="hang"):
            cli.build_train_plan(arguments)


# ----------------------------------------------------------------------------------
# Chaos: fuzzed fault schedules, and the CI fast-tier smoke
# ----------------------------------------------------------------------------------


@st.composite
def fault_schedules(draw):
    """1-2 worker faults over iterations 0-2 and replicas 0-1 (dp=2 probe)."""
    count = draw(st.integers(min_value=1, max_value=2))
    faults = set()
    for _ in range(count):
        kind = draw(st.sampled_from(["crash", "crash", "hang"]))
        iteration = draw(st.integers(min_value=0, max_value=2))
        replica = draw(st.integers(min_value=0, max_value=1))
        faults.add(f"{kind}@{iteration}:replica={replica}")
    return tuple(sorted(faults))


class TestChaos:
    @settings(max_examples=5, deadline=None)
    @given(
        faults=fault_schedules(),
        schedule=st.sampled_from(["1f1b", "zb1", "auto"]),
        codec=st.sampled_from(["none", "qsgd", "powersgd"]),
    )
    def test_fuzzed_fault_schedules_heal_bit_exact(self, faults, schedule, codec):
        """Any crash/hang schedule within budget heals to the exact serial
        answer, and tears down without orphans or leaked segments."""
        spec = ResilienceSpec(faults=faults, worker_timeout=1.5)
        trainer = probe_trainer(
            probe_plan(schedule=schedule, codec=codec).with_resilience(spec)
        )
        with trainer:
            losses = [trainer.train_iteration() for _ in range(4)]
            executor = trainer.engine._process_executor
            processes = list(executor._processes)
            segment_names = [segment.name for segment in executor.segments]
            weights = [arena.data.copy() for arena in trainer.engine.arenas]
        report = trainer.resilience_report
        assert report.respawns >= 1
        assert not report.degraded  # default budgets cover any 2-fault schedule
        oracle = serial_oracle(4, schedule=schedule, codec=codec)
        assert losses == oracle[0]
        assert_same_weights(weights, oracle[1])
        assert_no_orphans(processes, segment_names)

    def test_chaos_smoke_external_kill(self):
        """CI fast-tier smoke (engine level): SIGKILL a worker mid-run, the
        supervisor heals bit-exactly, shutdown leaves nothing behind."""
        trainer = probe_trainer(probe_plan().with_resilience(ResilienceSpec()))
        with trainer:
            losses = [trainer.train_iteration()]
            executor = trainer.engine._process_executor
            original = list(executor._processes)
            os.kill(original[1].pid, signal.SIGKILL)
            losses.append(trainer.train_iteration())
            processes = original + list(executor._processes)
            segment_names = [segment.name for segment in executor.segments]
            weights = [arena.data.copy() for arena in trainer.engine.arenas]
        assert trainer.resilience_report.respawns == 1
        oracle = serial_oracle(2)
        assert losses == oracle[0]
        assert_same_weights(weights, oracle[1])
        assert_no_orphans(processes, segment_names)

    def test_chaos_smoke_cli(self, capsys):
        """CI fast-tier smoke (CLI level): --inject-fault crash@2 under the
        process executor heals in-run and exits 0 with the respawn ledgered."""
        assert (
            cli.main(
                [
                    "train", "--preset", "cb_fe_sc", "--executor", "process",
                    "--inject-fault", "crash@2", "--iterations", "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "worker respawns: 1" in out
