"""Tests for the pipeline-stage slices: partitioning and single-device equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, GPTModel
from repro.nn.gpt_stage import build_gpt_stages, partition_layers
from repro.parallel.pipeline_engine import PipelineParallelEngine


class TestPartitionLayers:
    def test_even_split(self):
        assert partition_layers(8, 4) == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_remainder_goes_to_early_stages(self):
        parts = partition_layers(7, 3)
        assert [len(p) for p in parts] == [3, 2, 2]
        assert parts[0] == [0, 1, 2]

    def test_all_layers_covered_exactly_once(self):
        parts = partition_layers(13, 5)
        flattened = [layer for part in parts for layer in part]
        assert flattened == list(range(13))

    def test_too_many_stages_raises(self):
        with pytest.raises(ValueError):
            partition_layers(2, 3)

    def test_zero_stages_raises(self):
        with pytest.raises(ValueError):
            partition_layers(4, 0)


class TestStageConstruction:
    def test_roles_of_stages(self, tiny_config):
        stages = build_gpt_stages(tiny_config, 2, seed=0)
        assert stages[0].is_first and not stages[0].is_last
        assert stages[-1].is_last and not stages[-1].is_first
        assert stages[0].token_embedding is not None
        assert stages[-1].output_embedding is not None
        assert stages[0].output_embedding is None

    def test_single_stage_owns_both_embedding_copies(self, tiny_config):
        (stage,) = build_gpt_stages(tiny_config, 1, seed=0)
        assert stage.is_first and stage.is_last
        assert len(stage.embedding_parameters()) == 2

    def test_stage_weights_match_reference_model(self, tiny_config):
        """Stages initialise from the same derived streams as the full model."""
        model = GPTModel(tiny_config, seed=4)
        stages = build_gpt_stages(tiny_config, 2, seed=4)
        assert np.array_equal(
            stages[0].token_embedding.weight.data, model.token_embedding.weight.data
        )
        assert np.array_equal(
            stages[-1].output_embedding.weight.data, model.token_embedding.weight.data
        )
        assert np.array_equal(
            stages[0].layers[0].attention.qkv.weight.data,
            model.layers[0].attention.qkv.weight.data,
        )
        last_local = stages[-1].layers[-1]
        assert np.array_equal(
            last_local.mlp.proj.weight.data, model.layers[-1].mlp.proj.weight.data
        )

    def test_last_stage_requires_targets(self, tiny_config, rng):
        stages = build_gpt_stages(tiny_config, 2, seed=0)
        hidden = rng.normal(size=(1, 4, tiny_config.hidden_size))
        with pytest.raises(ValueError):
            stages[-1].forward(hidden, targets=None)

    def test_middle_stage_backward_requires_gradient(self, tiny_config, rng):
        stages = build_gpt_stages(tiny_config, 2, seed=0)
        hidden = rng.normal(size=(1, 4, tiny_config.hidden_size))
        _, cache = stages[0].forward(np.zeros((1, 4), dtype=np.int64))
        del hidden
        with pytest.raises(ValueError):
            # stage 0 is not last, so it needs a downstream gradient... but it is
            # first, so backward(None) is only invalid for non-first middle stages.
            build_gpt_stages(tiny_config, 3, seed=0)[1].backward(None, cache)


class TestPipelineEquivalence:
    @pytest.mark.parametrize("num_stages", [1, 2])
    def test_loss_and_gradients_match_single_device(self, tiny_config, rng, num_stages):
        """The staged pipeline must reproduce the reference model bit-for-bit."""
        tokens = rng.integers(0, tiny_config.vocab_size, size=(2, 8))
        targets = rng.integers(0, tiny_config.vocab_size, size=(2, 8))

        model = GPTModel(tiny_config, seed=7)
        loss_fn = CrossEntropyLoss()
        logits, cache = model.forward(tokens)
        reference_loss, loss_cache = loss_fn.forward(logits, targets)
        model.backward(loss_fn.backward(loss_cache), cache)

        stages = build_gpt_stages(tiny_config, num_stages, seed=7)
        engine = PipelineParallelEngine(stages)
        result = engine.run_iteration([(tokens, targets)])

        assert result.mean_loss == pytest.approx(reference_loss, abs=1e-10)
        # Transformer-layer gradients match exactly.
        assert np.allclose(
            stages[0].layers[0].attention.qkv.weight.grad,
            model.layers[0].attention.qkv.weight.grad,
            atol=1e-10,
        )
        # The tied-embedding gradient equals the sum of the per-copy gradients.
        copies = stages[0].embedding_parameters()
        if stages[-1] is not stages[0]:
            copies = copies + stages[-1].embedding_parameters()
        summed = np.sum([copy.grad for copy in copies], axis=0)
        assert np.allclose(summed, model.token_embedding.weight.grad, atol=1e-10)

    def test_micro_batch_split_matches_full_batch(self, tiny_config, rng):
        """Gradient accumulation over micro-batches equals one big batch."""
        tokens = rng.integers(0, tiny_config.vocab_size, size=(4, 8))
        targets = rng.integers(0, tiny_config.vocab_size, size=(4, 8))

        stages_full = build_gpt_stages(tiny_config, 2, seed=9)
        engine_full = PipelineParallelEngine(stages_full)
        engine_full.run_iteration([(tokens, targets)])

        stages_micro = build_gpt_stages(tiny_config, 2, seed=9)
        engine_micro = PipelineParallelEngine(stages_micro)
        engine_micro.run_iteration(
            [(tokens[:2], targets[:2]), (tokens[2:], targets[2:])]
        )

        for full_param, micro_param in zip(engine_full.parameters(), engine_micro.parameters()):
            assert np.allclose(full_param.grad, micro_param.grad, atol=1e-10)

    def test_forward_logits_matches_reference(self, tiny_config, rng):
        tokens = rng.integers(0, tiny_config.vocab_size, size=(2, 6))
        model = GPTModel(tiny_config, seed=3)
        stages = build_gpt_stages(tiny_config, 2, seed=3)
        engine = PipelineParallelEngine(stages)
        reference, _ = model.forward(tokens)
        assert np.allclose(engine.forward_logits(tokens), reference, atol=1e-10)


class TestStageNaming:
    def test_embedding_copies_carry_word_embeddings_marker(self, tiny_config):
        stages = build_gpt_stages(tiny_config, 2, seed=0)
        for stage in (stages[0], stages[-1]):
            copies = stage.embedding_parameters()
            assert copies
            for copy in copies:
                assert "word_embeddings" in copy.name
