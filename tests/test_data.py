"""Tests for the synthetic corpus, the data loader, and the zero-shot tasks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    ClozeTask,
    LanguageModelingDataLoader,
    MultipleChoiceTask,
    SyntheticCorpusConfig,
    build_zero_shot_suite,
)
from repro.data.tasks import ZeroShotExample, ZeroShotTask


class TestSyntheticCorpus:
    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(vocab_size=4)
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(successors_per_token=0)
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(idiom_fraction=1.5)

    def test_transitions_are_distributions(self, corpus):
        assert np.allclose(corpus.transitions.sum(axis=1), 1.0)
        assert np.all(corpus.transitions >= 0)

    def test_sampling_is_deterministic_per_stream(self, corpus):
        a = corpus.sample_batch(2, 10, corpus.train_rng(0, 0))
        b = corpus.sample_batch(2, 10, corpus.train_rng(0, 0))
        assert np.array_equal(a, b)

    def test_streams_differ_across_iterations_and_replicas(self, corpus):
        a = corpus.sample_batch(2, 10, corpus.train_rng(0, 0))
        b = corpus.sample_batch(2, 10, corpus.train_rng(1, 0))
        c = corpus.sample_batch(2, 10, corpus.train_rng(0, 1))
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_validation_stream_disjoint_from_training(self, corpus):
        train = corpus.sample_batch(2, 10, corpus.train_rng(0, 0))
        validation = corpus.sample_batch(2, 10, corpus.validation_rng(0))
        assert not np.array_equal(train, validation)

    def test_tokens_within_vocabulary(self, corpus):
        batch = corpus.sample_batch(4, 50, corpus.train_rng(3, 0))
        assert batch.min() >= 0 and batch.max() < 64

    def test_idiom_structure_exists(self, corpus):
        assert corpus.idiom_tokens
        for token, successor in corpus.idiom_successor.items():
            assert corpus.transitions[token, successor] > 0.5

    def test_language_is_learnable(self, corpus):
        """The true model's perplexity must be far below the uniform baseline."""
        assert corpus.optimal_perplexity() < 64 * 0.5

    def test_invalid_length_raises(self, corpus):
        with pytest.raises(ValueError):
            corpus.sample_sequence(0, corpus.train_rng(0, 0))


class TestDataLoader:
    def test_shapes_and_counts(self, corpus):
        loader = LanguageModelingDataLoader(
            corpus, sequence_length=12, micro_batch_size=3, num_micro_batches=4, data_parallel_degree=2
        )
        batches = loader.iteration_batches(0)
        assert len(batches) == 2
        assert len(batches[0]) == 4
        micro = batches[0][0]
        assert micro.tokens.shape == (3, 12)
        assert micro.targets.shape == (3, 12)
        assert loader.mini_batch_size == 3 * 4 * 2

    def test_targets_are_shifted_tokens(self, corpus):
        loader = LanguageModelingDataLoader(corpus, 8, 2, 1)
        micro = loader.iteration_batches(0)[0][0]
        # The target at position t is the token that followed in the sampled stream,
        # which equals the next input token for positions < seq_len - 1.
        assert np.array_equal(micro.tokens[:, 1:], micro.targets[:, :-1])

    def test_iterations_are_deterministic(self, corpus):
        loader = LanguageModelingDataLoader(corpus, 8, 2, 2, data_parallel_degree=2)
        first = loader.iteration_batches(5)
        second = loader.iteration_batches(5)
        assert np.array_equal(first[1][1].tokens, second[1][1].tokens)

    def test_replicas_see_different_data(self, corpus):
        loader = LanguageModelingDataLoader(corpus, 8, 2, 1, data_parallel_degree=2)
        batches = loader.iteration_batches(0)
        assert not np.array_equal(batches[0][0].tokens, batches[1][0].tokens)

    def test_validation_batch_fixed(self, corpus):
        loader = LanguageModelingDataLoader(corpus, 8, 2, 1)
        assert np.array_equal(loader.validation_batch(0).tokens, loader.validation_batch(0).tokens)
        assert not np.array_equal(loader.validation_batch(0).tokens, loader.validation_batch(1).tokens)

    def test_invalid_arguments_raise(self, corpus):
        with pytest.raises(ValueError):
            LanguageModelingDataLoader(corpus, 0, 2, 1)
        with pytest.raises(ValueError):
            LanguageModelingDataLoader(corpus, 8, 2, 1, data_parallel_degree=0)

    def test_micro_batch_shape_validation(self):
        with pytest.raises(ValueError):
            from repro.data.dataloader import MicroBatch

            MicroBatch(tokens=np.zeros((2, 4)), targets=np.zeros((2, 5)))


class TestZeroShotTasks:
    def test_cloze_task_structure(self, corpus):
        task = ClozeTask(num_examples=16).build(corpus)
        assert task.protocol == "cloze"
        assert task.num_examples == 16
        for example in task.examples:
            trigger = int(example.context[-1])
            assert trigger in corpus.idiom_tokens
            assert example.choices[0][0] == corpus.idiom_successor[trigger]

    def test_multiple_choice_structure(self, corpus):
        task = MultipleChoiceTask(num_choices=4, num_examples=12).build(corpus)
        assert task.protocol == "multiple_choice"
        assert task.chance_accuracy == pytest.approx(0.25)
        for example in task.examples:
            assert len(example.choices) == 4
            assert 0 <= example.answer_index < 4

    def test_suite_has_five_tasks(self, corpus):
        suite = build_zero_shot_suite(corpus, examples_per_task=8)
        assert len(suite) == 5
        assert {task.name for task in suite} == {
            "synthetic-lambada",
            "synthetic-piqa",
            "synthetic-mathqa",
            "synthetic-winogrande",
            "synthetic-race",
        }

    def test_oracle_model_beats_chance(self, corpus):
        """Scoring with the true language model must beat random guessing."""
        transitions = corpus.transitions

        def oracle_logits(token_ids: np.ndarray) -> np.ndarray:
            batch, seq = token_ids.shape
            logits = np.zeros((batch, seq, corpus.config.vocab_size))
            for b in range(batch):
                for t in range(seq):
                    logits[b, t] = np.log(transitions[int(token_ids[b, t])] + 1e-12)
            return logits

        suite = build_zero_shot_suite(corpus, examples_per_task=24)
        for task in suite:
            accuracy = task.evaluate(oracle_logits)
            if task.protocol == "cloze":
                assert accuracy > 0.8
            else:
                assert accuracy > task.chance_accuracy + 0.1

    def test_random_model_is_near_chance(self, corpus):
        rng = np.random.default_rng(0)

        def random_logits(token_ids: np.ndarray) -> np.ndarray:
            return rng.normal(size=(*token_ids.shape, corpus.config.vocab_size)) * 0.01

        task = MultipleChoiceTask(num_choices=2, num_examples=40).build(corpus)
        accuracy = task.evaluate(random_logits)
        assert 0.2 < accuracy < 0.8

    def test_empty_task_raises(self):
        task = ZeroShotTask(name="empty", protocol="cloze", examples=[])
        with pytest.raises(ValueError):
            task.evaluate(lambda ids: np.zeros((*ids.shape, 4)))

    def test_invalid_example_raises(self):
        with pytest.raises(ValueError):
            ZeroShotExample(context=np.zeros(3, dtype=np.int64), choices=[np.zeros(1, dtype=np.int64)], answer_index=2)

    def test_unknown_protocol_raises(self, corpus):
        task = ClozeTask(num_examples=4).build(corpus)
        broken = ZeroShotTask(name="x", protocol="ranking", examples=task.examples)
        with pytest.raises(ValueError):
            broken.evaluate(lambda ids: np.zeros((*ids.shape, corpus.config.vocab_size)))

    def test_log_likelihood_scoring_uses_continuation_positions(self, corpus):
        """The MC scorer conditions each continuation token on the true prefix."""
        from repro.data.tasks import _sequence_log_likelihood

        vocab = corpus.config.vocab_size
        context = np.array([1, 2, 3], dtype=np.int64)

        def peaked_logits(token_ids: np.ndarray) -> np.ndarray:
            # Always predict "next token = current token + 1" with high confidence.
            batch, seq = token_ids.shape
            logits = np.full((batch, seq, vocab), -10.0)
            for t in range(seq):
                nxt = int(token_ids[0, t]) + 1
                if nxt < vocab:
                    logits[0, t, nxt] = 10.0
            return logits

        good = _sequence_log_likelihood(peaked_logits, context, np.array([4, 5]))
        bad = _sequence_log_likelihood(peaked_logits, context, np.array([9, 9]))
        assert good > bad
