"""Bucket-level compression parity: codec buckets vs. the per-parameter path.

The zero-allocation bucket kernels (`CompressedGradientAllReduce.reduce_codec_bucket`
and `SelectiveStageCompression.reduce_bucket`) must be *bit-identical* to routing
every parameter through the per-parameter `reduce` — the same per-tensor RNG
streams, warm-started factors, error-feedback residuals (stored as flat slabs
instead of per-key dicts), and mean-of-replicas arithmetic.  These tests exercise
that contract directly on synthetic arenas across pipeline/data-parallel layouts,
with error feedback on and off, for all three DP codecs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EngineCompressionConfig
from repro.parallel.arena import (
    CodecBucket,
    ParameterArena,
    build_codec_buckets,
)
from repro.parallel.collectives import CommunicationLog, SimulatedProcessGroup
from repro.parallel.engine import CompressedGradientAllReduce
from repro.tensor.parameter import Parameter


def make_stage_parameters(rng, num_stages, matrices_per_stage, rows, cols):
    """Synthetic per-stage parameter lists: 2-D codec candidates + small 1-D ones."""
    stage_parameters = []
    for stage in range(num_stages):
        parameters = []
        for index in range(matrices_per_stage):
            parameters.append(
                Parameter(
                    rng.normal(size=(rows, cols)),
                    name=f"stage{stage}.weight{index}",
                )
            )
            parameters.append(
                Parameter(rng.normal(size=cols), name=f"stage{stage}.bias{index}")
            )
        stage_parameters.append(parameters)
    return stage_parameters


def engine_config(codec, error_feedback, min_elements):
    return EngineCompressionConfig(
        dp_codec=codec,
        dp_rank=2,
        dp_qsgd_bits=4,
        dp_topk_fraction=0.25,
        dp_error_feedback=error_feedback,
        dp_stage_fraction=1.0,
        min_compression_elements=min_elements,
    )


def run_path(codec, error_feedback, layout, bucket_bytes, iterations, bucketed):
    """Run `iterations` codec reductions, via buckets or per parameter.

    Returns the final per-parameter gradients of every replica (flattened).
    Both paths construct their own reducer (fresh compressor state) and see the
    same per-iteration gradients, so any divergence is a path difference.
    """
    num_stages, num_replicas, matrices, rows, cols = layout
    min_elements = rows * cols  # every 2-D matrix selected, biases excluded
    replica_params = []
    arenas = []
    for _ in range(num_replicas):
        init_rng = np.random.default_rng(99)  # identical weights on every replica
        stage_parameters = make_stage_parameters(init_rng, num_stages, matrices, rows, cols)
        flat = [p for stage in stage_parameters for p in stage]
        arenas.append(ParameterArena(flat))
        replica_params.append(stage_parameters)

    reducer = CompressedGradientAllReduce(
        engine_config(codec, error_feedback, min_elements), num_stages, seed=3
    )
    log = CommunicationLog()
    group = SimulatedProcessGroup(
        list(range(num_replicas)), log, category="data_parallel"
    )
    buckets = build_codec_buckets(
        arenas[0],
        replica_params[0],
        bucket_bytes,
        select=lambda stage, p: reducer.codec_applies(stage, p.grad),
    )
    assert buckets, "layout must produce at least one codec bucket"

    for iteration in range(iterations):
        grad_rng = np.random.default_rng(1234 + iteration)
        per_param_grads = [
            [grad_rng.normal(size=(rows, cols)) for _ in range(num_stages * matrices)]
            for _ in range(num_replicas)
        ]
        for replica in range(num_replicas):
            index = 0
            for stage_parameters in replica_params[replica]:
                for parameter in stage_parameters:
                    if parameter.grad.ndim == 2:
                        parameter.grad[...] = per_param_grads[replica][index]
                        index += 1

        if bucketed:
            for bucket in buckets:
                reducer.reduce_codec_bucket(
                    bucket, [arena.grad for arena in arenas], group
                )
        else:
            for stage in range(num_stages):
                for position, reference in enumerate(replica_params[0][stage]):
                    if not reducer.codec_applies(stage, reference.grad):
                        continue
                    gradients = [
                        replica_params[replica][stage][position].grad
                        for replica in range(num_replicas)
                    ]
                    synced = reducer.reduce(reference.name, stage, gradients, group)
                    for replica, new_grad in enumerate(synced):
                        replica_params[replica][stage][position].grad[...] = new_grad

    final = [arena.grad.copy() for arena in arenas]
    traffic = reducer.stage_traffic
    return final, traffic, log


LAYOUTS = [
    (1, 2, 2, 8, 6),  # PP1 x DP2
    (2, 2, 1, 8, 6),  # PP2 x DP2
    (2, 3, 2, 6, 5),  # PP2 x DP3
    (3, 2, 2, 5, 4),  # PP3 x DP2
]


class TestCodecBucketParity:
    @pytest.mark.parametrize("codec", ["powersgd", "qsgd", "topk"])
    @pytest.mark.parametrize("error_feedback", [True, False])
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_bucketed_path_is_bit_identical_to_per_parameter(
        self, codec, error_feedback, layout
    ):
        bucketed, t_b, _ = run_path(
            codec, error_feedback, layout, bucket_bytes=4096, iterations=3, bucketed=True
        )
        serial, t_s, _ = run_path(
            codec, error_feedback, layout, bucket_bytes=4096, iterations=3, bucketed=False
        )
        for got, want in zip(bucketed, serial):
            assert np.array_equal(got, want)
        # Byte accounting matches exactly; only message counts differ.
        for stage in t_s:
            assert t_b[stage].payload_bytes == t_s[stage].payload_bytes
            assert t_b[stage].original_bytes == t_s[stage].original_bytes
            assert t_b[stage].all_reduces <= t_s[stage].all_reduces

    @pytest.mark.parametrize("codec", ["powersgd", "qsgd", "topk"])
    def test_bucket_size_does_not_change_numerics(self, codec):
        layout = (2, 2, 2, 8, 6)
        tiny, _, _ = run_path(codec, True, layout, bucket_bytes=1, iterations=2, bucketed=True)
        huge, _, _ = run_path(
            codec, True, layout, bucket_bytes=1 << 22, iterations=2, bucketed=True
        )
        for got, want in zip(tiny, huge):
            assert np.array_equal(got, want)

    @settings(max_examples=10, deadline=None)
    @given(
        codec=st.sampled_from(["powersgd", "qsgd", "topk"]),
        error_feedback=st.booleans(),
        num_stages=st.integers(min_value=1, max_value=3),
        num_replicas=st.integers(min_value=2, max_value=3),
        rows=st.integers(min_value=4, max_value=10),
        cols=st.integers(min_value=4, max_value=8),
        bucket_kb=st.sampled_from([1, 4, 64]),
    )
    def test_parity_property(
        self, codec, error_feedback, num_stages, num_replicas, rows, cols, bucket_kb
    ):
        """Hypothesis sweep: arena-slab bucket compression == per-parameter path."""
        layout = (num_stages, num_replicas, 2, rows, cols)
        bucketed, _, _ = run_path(
            codec, error_feedback, layout, bucket_kb * 1024, iterations=2, bucketed=True
        )
        serial, _, _ = run_path(
            codec, error_feedback, layout, bucket_kb * 1024, iterations=2, bucketed=False
        )
        for got, want in zip(bucketed, serial):
            assert np.array_equal(got, want)

    def test_wire_bytes_match_per_parameter_records(self):
        """Total compressed wire bytes agree between the two record granularities."""
        layout = (2, 2, 2, 8, 6)
        for codec in ("powersgd", "qsgd", "topk"):
            _, _, log_b = run_path(codec, True, layout, 2048, iterations=2, bucketed=True)
            _, _, log_s = run_path(codec, True, layout, 2048, iterations=2, bucketed=False)
            assert log_b.total_wire_bytes() == pytest.approx(log_s.total_wire_bytes())
            assert log_b.count() < log_s.count()


class TestCodecBucketStructure:
    def test_buckets_group_by_size_and_stage(self, rng):
        stage_parameters = make_stage_parameters(rng, 2, 3, 8, 8)
        flat = [p for stage in stage_parameters for p in stage]
        arena = ParameterArena(flat)
        select = lambda stage, p: p.data.ndim == 2  # noqa: E731
        one_per_matrix = build_codec_buckets(arena, stage_parameters, 1, select)
        assert len(one_per_matrix) == 6
        everything = build_codec_buckets(arena, stage_parameters, 1 << 30, select)
        assert len(everything) == 2  # never crosses a stage boundary
        assert {bucket.stage_index for bucket in everything} == {0, 1}
        for bucket in everything:
            assert bucket.num_elements == 3 * 8 * 8
            # Residual-slab offsets tile the bucket back to back.
            offset = 0
            for segment in bucket.segments:
                assert segment.offset == offset
                offset += segment.num_elements

    def test_invalid_bucket_bytes_rejected(self, rng):
        stage_parameters = make_stage_parameters(rng, 1, 1, 4, 4)
        arena = ParameterArena(stage_parameters[0])
        with pytest.raises(ValueError):
            build_codec_buckets(arena, stage_parameters, 0, lambda s, p: True)

    def test_codec_bucket_reports_wire_bytes(self, rng):
        stage_parameters = make_stage_parameters(rng, 1, 2, 4, 4)
        arena = ParameterArena(stage_parameters[0])
        buckets = build_codec_buckets(
            arena, stage_parameters, 1 << 20, lambda s, p: p.data.ndim == 2
        )
        assert len(buckets) == 1
        bucket = buckets[0]
        assert isinstance(bucket, CodecBucket)
        assert bucket.wire_bytes == bucket.num_elements * 2
        assert bucket.parameter_names == ("stage0.weight0", "stage0.weight1")
