"""Tests for selective stage compression (data-parallel PowerSGD with error feedback)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.selective_stage import SelectiveStageCompression, select_compressed_stages
from repro.nn.gpt_stage import build_gpt_stages
from repro.parallel.collectives import CommunicationLog, SimulatedProcessGroup
from repro.parallel.data_parallel import DataParallelGradientSync
from repro.parallel.pipeline_engine import PipelineParallelEngine
from repro.tensor.parameter import Parameter


class TestStageSelection:
    def test_paper_default(self):
        """75 % of 4 stages compresses the three earliest stages (Fig. 8)."""
        assert select_compressed_stages(4, 0.75) == {0, 1, 2}

    def test_boundaries(self):
        assert select_compressed_stages(4, 0.0) == set()
        assert select_compressed_stages(4, 1.0) == {0, 1, 2, 3}
        assert select_compressed_stages(4, 0.25) == {0}
        assert select_compressed_stages(4, 0.5) == {0, 1}

    def test_earliest_stages_selected_first(self):
        for fraction in (0.25, 0.5, 0.75):
            stages = select_compressed_stages(8, fraction)
            assert stages == set(range(len(stages)))

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            select_compressed_stages(0, 0.5)
        with pytest.raises(ValueError):
            select_compressed_stages(4, 1.5)


class TestShouldCompress:
    def test_respects_stage_selection_and_shape(self):
        hook = SelectiveStageCompression(num_stages=4, stage_fraction=0.5, rank=4,
                                         min_compression_elements=16)
        matrix_param = Parameter(np.zeros((8, 8)), name="w")
        bias_param = Parameter(np.zeros(64), name="b")
        tiny_param = Parameter(np.zeros((2, 2)), name="t")
        assert hook.should_compress(0, matrix_param)
        assert hook.should_compress(1, matrix_param)
        assert not hook.should_compress(2, matrix_param)  # unselected stage
        assert not hook.should_compress(0, bias_param)  # 1-D
        assert not hook.should_compress(0, tiny_param)  # too small

    def test_invalid_rank_raises(self):
        with pytest.raises(ValueError):
            SelectiveStageCompression(num_stages=4, rank=0)


class TestReduce:
    def _reduce_once(self, hook, gradients, log=None):
        log = log if log is not None else CommunicationLog()
        group = SimulatedProcessGroup(list(range(len(gradients))), log, category="data_parallel")
        return hook.reduce("w", 0, gradients, group), log

    def test_all_replicas_get_identical_result(self, rng):
        hook = SelectiveStageCompression(num_stages=4, rank=2)
        gradients = [rng.normal(size=(32, 16)) for _ in range(4)]
        results, _ = self._reduce_once(hook, gradients)
        assert len(results) == 4
        for result in results[1:]:
            assert np.array_equal(result, results[0])

    def test_low_rank_input_is_reduced_exactly(self, rng):
        """When the true mean gradient is low-rank, the reduction recovers it."""
        base = rng.normal(size=(32, 2)) @ rng.normal(size=(2, 16))
        gradients = [base.copy() for _ in range(4)]
        hook = SelectiveStageCompression(num_stages=4, rank=2, error_feedback=False)
        for _ in range(3):  # a few warm-started rounds converge
            results, _ = self._reduce_once(hook, gradients)
        assert np.allclose(results[0], base, atol=1e-6)

    def test_error_feedback_tracks_true_mean_over_iterations(self, rng):
        """Sum over iterations of the delivered mean approaches the true mean sum."""
        hook = SelectiveStageCompression(num_stages=4, rank=1, error_feedback=True)
        true_sum = np.zeros((24, 12))
        delivered_sum = np.zeros((24, 12))
        per_replica_true = [np.zeros((24, 12)) for _ in range(2)]
        for _ in range(15):
            gradients = [rng.normal(size=(24, 12)) for _ in range(2)]
            for replica, gradient in enumerate(gradients):
                per_replica_true[replica] += gradient
            true_sum += np.mean(gradients, axis=0)
            results, _ = self._reduce_once(hook, gradients)
            delivered_sum += results[0]
        # The residuals of the replicas absorb exactly what was not delivered.
        residual_mean = np.mean(
            [hook._states["w"].residuals[replica] for replica in range(2)], axis=0
        )
        assert np.allclose(delivered_sum + residual_mean, true_sum, atol=1e-7)

    def test_traffic_is_logged_as_compressed_factors(self, rng):
        hook = SelectiveStageCompression(num_stages=4, rank=2)
        gradients = [rng.normal(size=(32, 16)) for _ in range(4)]
        _, log = self._reduce_once(hook, gradients)
        assert log.count() == 2  # one all-reduce for P, one for Q
        assert all(record.compressed for record in log.records)
        p_bytes = 32 * 2 * 2
        q_bytes = 16 * 2 * 2
        assert {record.payload_bytes for record in log.records} == {p_bytes, q_bytes}

    def test_bytes_saved_fraction(self, rng):
        hook = SelectiveStageCompression(num_stages=4, rank=2)
        gradients = [rng.normal(size=(64, 64)) for _ in range(4)]
        self._reduce_once(hook, gradients)
        assert 0.5 < hook.bytes_saved_fraction() < 1.0
        hook.reset()
        assert hook.bytes_saved_fraction() == 0.0

    def test_group_size_mismatch_raises(self, rng):
        hook = SelectiveStageCompression(num_stages=4, rank=2)
        log = CommunicationLog()
        group = SimulatedProcessGroup([0, 1, 2], log, category="data_parallel")
        with pytest.raises(ValueError):
            hook.reduce("w", 0, [rng.normal(size=(8, 8))] * 2, group)


class TestIntegrationWithDPSync:
    def test_selected_stage_traffic_is_compressed(self, tiny_config, rng):
        replicas = [build_gpt_stages(tiny_config, 2, seed=0) for _ in range(2)]
        for index, replica in enumerate(replicas):
            local_rng = np.random.default_rng(index)
            tokens = local_rng.integers(0, tiny_config.vocab_size, size=(2, 8))
            targets = local_rng.integers(0, tiny_config.vocab_size, size=(2, 8))
            PipelineParallelEngine(replica).run_iteration([(tokens, targets)])

        log = CommunicationLog()
        hook = SelectiveStageCompression(
            num_stages=2, stage_fraction=0.5, rank=2, min_compression_elements=64
        )
        DataParallelGradientSync(
            replicas, log=log, compression_hook=hook, exclude_embedding=True
        ).synchronize()

        compressed = [record for record in log.records if record.compressed]
        uncompressed = [record for record in log.records if not record.compressed]
        assert compressed, "stage 0 weight matrices should go through the compressed path"
        assert uncompressed, "stage 1 and small parameters stay uncompressed"
        # After DP sync plus embedding sync all replicas agree on every gradient.
        from repro.core.fused_embedding import EmbeddingSynchronizer

        EmbeddingSynchronizer(replicas, fused=True).synchronize()
        sync = DataParallelGradientSync(replicas, exclude_embedding=True)
        assert sync.max_gradient_divergence() < 1e-9
