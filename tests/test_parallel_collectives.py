"""Tests for the simulated collectives and traffic accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.collectives import (
    CommunicationLog,
    SimulatedProcessGroup,
    average_arrays,
    ring_all_reduce_wire_bytes,
)


@pytest.fixture
def log() -> CommunicationLog:
    return CommunicationLog()


@pytest.fixture
def group(log) -> SimulatedProcessGroup:
    return SimulatedProcessGroup([0, 1, 2, 3], log, category="data_parallel")


class TestRingCost:
    def test_formula(self):
        assert ring_all_reduce_wire_bytes(100.0, 4) == pytest.approx(150.0)
        assert ring_all_reduce_wire_bytes(100.0, 2) == pytest.approx(100.0)

    def test_single_rank_is_free(self):
        assert ring_all_reduce_wire_bytes(100.0, 1) == 0.0


class TestAllReduce:
    def test_sum_and_mean(self, group, rng):
        contributions = [rng.normal(size=(3, 3)) for _ in range(4)]
        summed = group.all_reduce(contributions, op="sum")
        assert all(np.allclose(result, np.sum(contributions, axis=0)) for result in summed)
        averaged = group.all_reduce(contributions, op="mean")
        assert np.allclose(averaged[0], np.mean(contributions, axis=0))

    def test_wrong_contribution_count_raises(self, group, rng):
        with pytest.raises(ValueError):
            group.all_reduce([rng.normal(size=3)] * 3)

    def test_unsupported_op_raises(self, group, rng):
        with pytest.raises(ValueError):
            group.all_reduce([rng.normal(size=3)] * 4, op="median")

    def test_traffic_logged_with_ring_factor(self, group, log, rng):
        contributions = [rng.normal(size=100) for _ in range(4)]
        group.all_reduce(contributions)
        record = log.records[-1]
        assert record.operation == "all_reduce"
        assert record.payload_bytes == 100 * 2
        assert record.wire_bytes == pytest.approx(ring_all_reduce_wire_bytes(200, 4))

    def test_compressed_flag_and_custom_payload(self, group, log, rng):
        group.all_reduce([rng.normal(size=100)] * 4, payload_bytes=12, compressed=True)
        assert log.records[-1].compressed is True
        assert log.records[-1].payload_bytes == 12


class TestOtherCollectives:
    def test_all_gather(self, group, log, rng):
        contributions = [rng.normal(size=4) for _ in range(4)]
        gathered = group.all_gather(contributions)
        assert len(gathered) == 4 and len(gathered[0]) == 4
        assert np.allclose(gathered[2][1], contributions[1])
        assert log.records[-1].operation == "all_gather"

    def test_reduce_scatter_shards_cover_reduction(self, group, rng):
        contributions = [rng.normal(size=8) for _ in range(4)]
        shards = group.reduce_scatter(contributions)
        reassembled = np.concatenate(shards)
        assert np.allclose(reassembled, np.sum(contributions, axis=0))

    def test_broadcast(self, group, log, rng):
        tensor = rng.normal(size=5)
        results = group.broadcast(tensor, root_rank=2)
        assert all(np.allclose(result, tensor) for result in results)
        with pytest.raises(ValueError):
            group.broadcast(tensor, root_rank=9)

    def test_send_recv(self, group, log, rng):
        tensor = rng.normal(size=6)
        received = group.send_recv(tensor, src_rank=1, dst_rank=2)
        assert np.allclose(received, tensor)
        assert log.records[-1].operation == "p2p"
        with pytest.raises(ValueError):
            group.send_recv(tensor, src_rank=1, dst_rank=99)


class TestCommunicationLog:
    def test_totals_and_filters(self, log, rng):
        dp_group = SimulatedProcessGroup([0, 1], log, category="data_parallel")
        emb_group = SimulatedProcessGroup([0, 1], log, category="embedding_sync")
        dp_group.all_reduce([rng.normal(size=10)] * 2)
        emb_group.all_reduce([rng.normal(size=10)] * 2)
        assert log.count() == 2
        assert log.count(category="data_parallel") == 1
        assert log.total_wire_bytes("embedding_sync") > 0
        categories = log.by_category()
        assert set(categories) == {"data_parallel", "embedding_sync"}

    def test_overlapped_and_exposed_split(self, log, rng):
        """A group's ``overlapped`` flag is stamped on its records, and the log
        partitions wire bytes exactly between overlapped and exposed."""
        hidden = SimulatedProcessGroup([0, 1], log, category="data_parallel", overlapped=True)
        exposed = SimulatedProcessGroup([0, 1], log, category="data_parallel")
        hidden.all_reduce([rng.normal(size=10)] * 2)
        exposed.all_reduce([rng.normal(size=10)] * 2)
        assert all(record.overlapped == (record is log.records[0]) for record in log.records)
        assert log.overlapped_wire_bytes("data_parallel") > 0
        assert log.overlapped_wire_bytes("data_parallel") + log.exposed_wire_bytes(
            "data_parallel"
        ) == pytest.approx(log.total_wire_bytes("data_parallel"))
        assert log.overlapped_wire_bytes("embedding_sync") == 0.0

    def test_clear(self, log, rng):
        SimulatedProcessGroup([0, 1], log, category="x").all_reduce([rng.normal(size=4)] * 2)
        log.clear()
        assert log.count() == 0

    def test_empty_group_raises(self, log):
        with pytest.raises(ValueError):
            SimulatedProcessGroup([], log, category="x")


class TestAverageArrays:
    def test_mean(self, rng):
        arrays = [rng.normal(size=(2, 2)) for _ in range(3)]
        assert np.allclose(average_arrays(arrays), np.mean(arrays, axis=0))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            average_arrays([])
