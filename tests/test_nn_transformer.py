"""Tests for the transformer layer, the full GPT model, and the loss module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, GPTModel, GPTModelConfig, TransformerLayer
from repro.nn.loss import loss_from_perplexity, perplexity_from_loss

from tests.conftest import numerical_gradient


class TestTransformerLayer:
    def test_backward_matches_numerical(self, rng):
        layer = TransformerLayer(4, 2, rng, num_layers_for_init=2)
        x = rng.normal(size=(1, 3, 4))
        weights = rng.normal(size=(1, 3, 4))

        def loss():
            out, _ = layer.forward(x)
            return float(np.sum(out * weights))

        out, cache = layer.forward(x)
        grad_input = layer.backward(weights, cache)
        assert np.allclose(grad_input, numerical_gradient(loss, x), atol=1e-5)
        assert np.allclose(
            layer.mlp.fc.weight.grad,
            numerical_gradient(loss, layer.mlp.fc.weight.data),
            atol=1e-5,
        )
        assert np.allclose(
            layer.ln1.gamma.grad, numerical_gradient(loss, layer.ln1.gamma.data), atol=1e-5
        )

    def test_residual_path_preserves_information(self, rng):
        layer = TransformerLayer(8, 2, rng)
        x = rng.normal(size=(1, 4, 8)) * 5
        out, _ = layer.forward(x)
        # The output keeps a strong linear relationship with the residual input.
        correlation = np.corrcoef(x.reshape(-1), out.reshape(-1))[0, 1]
        assert correlation > 0.5


class TestGPTModelConfig:
    def test_invalid_heads_raises(self):
        with pytest.raises(ValueError):
            GPTModelConfig(vocab_size=8, max_sequence_length=4, num_layers=1, hidden_size=10, num_heads=3)

    def test_invalid_layers_raises(self):
        with pytest.raises(ValueError):
            GPTModelConfig(vocab_size=8, max_sequence_length=4, num_layers=0, hidden_size=8, num_heads=2)

    def test_parameter_count_matches_instantiated_model(self, tiny_config):
        model = GPTModel(tiny_config, seed=0)
        assert model.num_parameters() == tiny_config.parameter_count()


class TestGPTModel:
    def test_logits_shape(self, tiny_config, rng):
        model = GPTModel(tiny_config, seed=0)
        tokens = rng.integers(0, tiny_config.vocab_size, size=(2, 8))
        logits, _ = model.forward(tokens)
        assert logits.shape == (2, 8, tiny_config.vocab_size)

    def test_sequence_too_long_raises(self, tiny_config, rng):
        model = GPTModel(tiny_config, seed=0)
        tokens = rng.integers(0, tiny_config.vocab_size, size=(1, tiny_config.max_sequence_length + 1))
        with pytest.raises(ValueError):
            model.forward(tokens)

    def test_same_seed_same_weights(self, tiny_config):
        a = GPTModel(tiny_config, seed=5)
        b = GPTModel(tiny_config, seed=5)
        for (name_a, param_a), (name_b, param_b) in zip(a.named_parameters(), b.named_parameters()):
            assert name_a == name_b
            assert np.array_equal(param_a.data, param_b.data)

    def test_training_reduces_loss(self, tiny_config, rng):
        """A few SGD steps on a fixed batch must reduce the loss (sanity of backprop)."""
        from repro.optim import SGD

        model = GPTModel(tiny_config, seed=1)
        loss_fn = CrossEntropyLoss()
        optimizer = SGD(model.parameters(), lr=0.05)
        tokens = rng.integers(0, tiny_config.vocab_size, size=(4, 8))
        targets = rng.integers(0, tiny_config.vocab_size, size=(4, 8))

        losses = []
        for _ in range(20):
            optimizer.zero_grad()
            logits, cache = model.forward(tokens)
            loss, loss_cache = loss_fn.forward(logits, targets)
            model.backward(loss_fn.backward(loss_cache), cache)
            optimizer.step()
            losses.append(loss)
        assert losses[-1] < losses[0] * 0.9

    def test_tied_embedding_gradient_has_two_contributions(self, tiny_config, rng):
        """The word-embedding gradient must include lookup and projection terms."""
        model = GPTModel(tiny_config, seed=2)
        loss_fn = CrossEntropyLoss()
        tokens = rng.integers(0, tiny_config.vocab_size, size=(2, 6))
        targets = rng.integers(0, tiny_config.vocab_size, size=(2, 6))
        logits, cache = model.forward(tokens)
        loss, loss_cache = loss_fn.forward(logits, targets)
        model.backward(loss_fn.backward(loss_cache), cache)
        grad = model.token_embedding.weight.grad
        # Rows for tokens never seen in the input still receive projection gradient.
        unseen = [t for t in range(tiny_config.vocab_size) if t not in set(tokens.reshape(-1))]
        assert unseen, "test setup should leave some tokens unseen"
        assert np.abs(grad[unseen]).max() > 0

    def test_word_embedding_parameter_is_named(self, tiny_config):
        model = GPTModel(tiny_config, seed=0)
        names = [name for name, _ in model.named_parameters()]
        assert any("word_embeddings" in name for name in names)


class TestLossHelpers:
    def test_perplexity_round_trip(self):
        assert perplexity_from_loss(loss_from_perplexity(12.5)) == pytest.approx(12.5)

    def test_perplexity_is_clamped(self):
        assert np.isfinite(perplexity_from_loss(1e9))

    def test_invalid_perplexity_raises(self):
        with pytest.raises(ValueError):
            loss_from_perplexity(0.0)
