"""Tests for the pipeline schedules and the epilogue analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.pipeline_schedule import (
    PipelineOp,
    ScheduleKind,
    build_1f1b_schedule,
    build_gpipe_schedule,
    build_interleaved_1f1b_schedule,
    build_schedule,
    build_zb1_schedule,
    count_in_flight_micro_batches,
    epilogue_micro_batches,
    warmup_micro_batches,
    zb1_deferred_weight_passes,
)


def op_counts(ops):
    forwards = [(op.micro_batch, op.chunk) for op in ops if op.kind == "forward"]
    backwards = [(op.micro_batch, op.chunk) for op in ops if op.kind == "backward"]
    return forwards, backwards


class TestGPipe:
    def test_all_forwards_before_backwards(self):
        schedule = build_gpipe_schedule(3, 5)
        for ops in schedule:
            kinds = [op.kind for op in ops]
            assert kinds == ["forward"] * 5 + ["backward"] * 5


class Test1F1B:
    @pytest.mark.parametrize("num_stages,num_micro", [(1, 4), (2, 4), (4, 8), (4, 16), (3, 7)])
    def test_each_micro_batch_forward_and_backward_once(self, num_stages, num_micro):
        schedule = build_1f1b_schedule(num_stages, num_micro)
        for ops in schedule:
            forwards, backwards = op_counts(ops)
            assert sorted(forwards) == [(mb, 0) for mb in range(num_micro)]
            assert sorted(backwards) == [(mb, 0) for mb in range(num_micro)]

    def test_backward_never_precedes_forward_of_same_micro_batch(self):
        schedule = build_1f1b_schedule(4, 8)
        for ops in schedule:
            seen_forward = set()
            for op in ops:
                if op.kind == "forward":
                    seen_forward.add(op.micro_batch)
                else:
                    assert op.micro_batch in seen_forward

    def test_warmup_counts(self):
        assert warmup_micro_batches(0, 4, 16) == 3
        assert warmup_micro_batches(3, 4, 16) == 0
        assert warmup_micro_batches(0, 4, 2) == 2  # capped by micro-batch count

    def test_in_flight_bound(self):
        """1F1B keeps at most (num_stages - stage) activations alive."""
        schedule = build_1f1b_schedule(4, 16)
        for stage, ops in enumerate(schedule):
            outstanding = 0
            peak = 0
            for op in ops:
                if op.kind == "forward":
                    outstanding += 1
                else:
                    outstanding -= 1
                peak = max(peak, outstanding)
            assert peak == count_in_flight_micro_batches(stage, 4, 16)

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            build_1f1b_schedule(0, 4)
        with pytest.raises(ValueError):
            build_1f1b_schedule(2, 0)


class TestInterleaved:
    def test_requires_divisible_micro_batches(self):
        with pytest.raises(ValueError):
            build_interleaved_1f1b_schedule(4, 6, num_chunks=2)

    def test_single_chunk_falls_back_to_1f1b(self):
        assert build_interleaved_1f1b_schedule(4, 8, num_chunks=1) == build_1f1b_schedule(4, 8)

    @pytest.mark.parametrize("num_stages,num_micro,chunks", [(2, 4, 2), (4, 8, 2), (4, 8, 3)])
    def test_each_unit_appears_once(self, num_stages, num_micro, chunks):
        schedule = build_interleaved_1f1b_schedule(num_stages, num_micro, chunks)
        expected = sorted((mb, chunk) for mb in range(num_micro) for chunk in range(chunks))
        for ops in schedule:
            forwards, backwards = op_counts(ops)
            assert sorted(forwards) == expected
            assert sorted(backwards) == expected

    def test_backward_chunk_order_is_reversed(self):
        """Backward units start from the last model chunk (deepest layers first)."""
        schedule = build_interleaved_1f1b_schedule(4, 8, 2)
        for ops in schedule:
            first_backward = next(op for op in ops if op.kind == "backward")
            assert first_backward.chunk == 1


class TestZB1:
    """The handcrafted zero-bubble ZB-H1 schedule (split B/W backward)."""

    @staticmethod
    def op_lists(ops):
        forwards = [op.micro_batch for op in ops if op.kind == "forward"]
        inputs = [op.micro_batch for op in ops if op.kind == "backward_input"]
        weights = [op.micro_batch for op in ops if op.kind == "backward_weight"]
        return forwards, inputs, weights

    @pytest.mark.parametrize(
        "num_stages,num_micro",
        [(1, 4), (2, 4), (4, 8), (4, 16), (3, 7), (4, 2), (4, 1), (8, 3)],
    )
    def test_every_micro_batch_has_f_b_w_once_in_order(self, num_stages, num_micro):
        """Includes the micro_batches < pp edge cases (4,2), (4,1), (8,3)."""
        schedule = build_zb1_schedule(num_stages, num_micro)
        assert len(schedule) == num_stages
        for ops in schedule:
            forwards, inputs, weights = self.op_lists(ops)
            # Each phase visits every micro-batch exactly once, in ascending
            # order — ascending W order is what makes the per-parameter
            # gradient accumulation order identical to 1F1B's.
            assert forwards == list(range(num_micro))
            assert inputs == list(range(num_micro))
            assert weights == list(range(num_micro))
            seen_forward, seen_input = set(), set()
            for op in ops:
                if op.kind == "forward":
                    seen_forward.add(op.micro_batch)
                elif op.kind == "backward_input":
                    assert op.micro_batch in seen_forward
                    seen_input.add(op.micro_batch)
                else:
                    assert op.kind == "backward_weight"
                    assert op.micro_batch in seen_input

    def test_single_stage_degenerates_to_serial_split_backward(self):
        """pp == 1: F, B, W per micro-batch back to back — serial/1f1b order."""
        (ops,) = build_zb1_schedule(1, 3)
        assert ops == [
            PipelineOp(kind, mb)
            for mb in range(3)
            for kind in ("forward", "backward_input", "backward_weight")
        ]

    @pytest.mark.parametrize("num_stages,num_micro", [(2, 4), (4, 8), (4, 2), (3, 7)])
    def test_same_warmup_as_1f1b(self, num_stages, num_micro):
        """The first B sits at the same op index as 1F1B's first backward."""
        schedule = build_zb1_schedule(num_stages, num_micro)
        reference = build_1f1b_schedule(num_stages, num_micro)
        for zb_ops, ref_ops in zip(schedule, reference):
            zb_first_b = next(i for i, op in enumerate(zb_ops) if op.kind == "backward_input")
            ref_first_b = next(i for i, op in enumerate(ref_ops) if op.kind == "backward")
            assert zb_first_b == ref_first_b

    def test_stage_k_defers_k_weight_passes(self):
        num_stages, num_micro = 4, 8
        schedule = build_zb1_schedule(num_stages, num_micro)
        for stage, ops in enumerate(schedule):
            pending = peak_pending = 0
            for op in ops:
                if op.kind == "backward_input":
                    pending += 1
                elif op.kind == "backward_weight":
                    pending -= 1
                peak_pending = max(peak_pending, pending)
            assert peak_pending == zb1_deferred_weight_passes(stage, num_stages, num_micro) + 1
            assert zb1_deferred_weight_passes(stage, num_stages, num_micro) == min(
                stage, num_micro
            )

    def test_deferred_passes_out_of_range_stage_raises(self):
        with pytest.raises(ValueError):
            zb1_deferred_weight_passes(4, 4, 8)

    @settings(max_examples=40, deadline=None)
    @given(
        num_stages=st.integers(min_value=1, max_value=8),
        num_micro=st.integers(min_value=1, max_value=24),
    )
    def test_same_peak_in_flight_activations_as_1f1b(self, num_stages, num_micro):
        """ZB-H1's memory claim: peak in-flight micro-batches match 1F1B."""
        schedule = build_zb1_schedule(num_stages, num_micro)
        for stage, ops in enumerate(schedule):
            outstanding = peak = 0
            pending_w = peak_pending_w = 0
            for op in ops:
                if op.kind == "forward":
                    outstanding += 1
                elif op.kind == "backward_input":
                    # B consumes the forward activation (backward_input clears
                    # the caches), leaving only the W stash alive.
                    outstanding -= 1
                    pending_w += 1
                else:
                    pending_w -= 1
                peak = max(peak, outstanding)
                peak_pending_w = max(peak_pending_w, pending_w)
            assert peak == count_in_flight_micro_batches(stage, num_stages, num_micro)
            # The W stash held between B and W is bounded by the deferral depth.
            assert peak_pending_w <= min(stage + 1, num_micro)

    @settings(max_examples=40, deadline=None)
    @given(
        num_stages=st.integers(min_value=1, max_value=8),
        num_micro=st.integers(min_value=1, max_value=24),
    )
    def test_total_op_count_is_three_per_micro_batch(self, num_stages, num_micro):
        schedule = build_zb1_schedule(num_stages, num_micro)
        assert all(len(ops) == 3 * num_micro for ops in schedule)

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            build_zb1_schedule(0, 4)
        with pytest.raises(ValueError):
            build_zb1_schedule(2, 0)


class TestDispatch:
    def test_build_schedule_dispatch(self):
        assert build_schedule(ScheduleKind.GPIPE, 2, 4) == build_gpipe_schedule(2, 4)
        assert build_schedule(ScheduleKind.ONE_F_ONE_B, 2, 4) == build_1f1b_schedule(2, 4)
        assert build_schedule(ScheduleKind.INTERLEAVED_1F1B, 2, 4, 2) == build_interleaved_1f1b_schedule(2, 4, 2)
        assert build_schedule(ScheduleKind.ZERO_BUBBLE_H1, 2, 4) == build_zb1_schedule(2, 4)


class TestEpilogue:
    def test_paper_example(self):
        """p=4, m=8: the first stage's epilogue is the last 3 micro-batches (Fig. 6)."""
        assert epilogue_micro_batches(0, 4, 8) == {5, 6, 7}
        assert epilogue_micro_batches(1, 4, 8) == {6, 7}
        assert epilogue_micro_batches(2, 4, 8) == {7}
        assert epilogue_micro_batches(3, 4, 8) == set()

    def test_matches_schedule_cooldown(self):
        """The analytic epilogue is the cool-down tail of the schedule.

        The op list places the backward paired with the final forward right after
        it, so the "after the last forward" set may contain one extra micro-batch
        (whose transfer can still be hidden by that last forward); the analytic set
        must be exactly the remaining, fully exposed tail.
        """
        num_stages, num_micro = 4, 16
        schedule = build_1f1b_schedule(num_stages, num_micro)
        for stage, ops in enumerate(schedule):
            last_forward = max(i for i, op in enumerate(ops) if op.kind == "forward")
            cooldown = {op.micro_batch for op in ops[last_forward + 1 :] if op.kind == "backward"}
            analytic = epilogue_micro_batches(stage, num_stages, num_micro)
            assert analytic.issubset(cooldown)
            assert len(cooldown) - len(analytic) <= 1
            if analytic:
                assert max(cooldown) == max(analytic) == num_micro - 1

    def test_out_of_range_stage_raises(self):
        with pytest.raises(ValueError):
            epilogue_micro_batches(4, 4, 8)

    @settings(max_examples=30, deadline=None)
    @given(
        num_stages=st.integers(min_value=1, max_value=8),
        extra=st.integers(min_value=0, max_value=24),
        stage=st.integers(min_value=0, max_value=7),
    )
    def test_epilogue_size_property(self, num_stages, extra, stage):
        """|epilogue(stage)| == min(num_stages - 1 - stage, m) for every valid stage."""
        num_micro = num_stages + extra
        stage = stage % num_stages
        epilogue = epilogue_micro_batches(stage, num_stages, num_micro)
        assert len(epilogue) == min(num_stages - 1 - stage, num_micro)
        assert all(mb >= num_micro - (num_stages - 1 - stage) for mb in epilogue)


class TestScheduleProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        num_stages=st.integers(min_value=1, max_value=6),
        num_micro=st.integers(min_value=1, max_value=24),
    )
    def test_1f1b_total_op_count(self, num_stages, num_micro):
        schedule = build_1f1b_schedule(num_stages, num_micro)
        assert len(schedule) == num_stages
        assert all(len(ops) == 2 * num_micro for ops in schedule)

    @settings(max_examples=20, deadline=None)
    @given(
        num_stages=st.integers(min_value=2, max_value=5),
        groups=st.integers(min_value=1, max_value=4),
        chunks=st.integers(min_value=2, max_value=3),
    )
    def test_interleaved_total_op_count(self, num_stages, groups, chunks):
        num_micro = num_stages * groups
        schedule = build_interleaved_1f1b_schedule(num_stages, num_micro, chunks)
        assert all(len(ops) == 2 * num_micro * chunks for ops in schedule)
