"""Tests for the paper-scale model catalogue."""

from __future__ import annotations

import pytest

from repro.models import (
    FUNCTIONAL_SMALL,
    FUNCTIONAL_TINY,
    GPT_2_5B,
    GPT_8_3B,
    GPT_9_2B,
    GPT_175B,
    PAPER_MODELS,
    SCALABILITY_MODELS,
    PaperModelSpec,
    functional_config,
)


class TestPaperModelSpecs:
    @pytest.mark.parametrize(
        "spec,expected_billion,tolerance",
        [(GPT_2_5B, 2.5, 0.2), (GPT_8_3B, 8.3, 0.3), (GPT_9_2B, 9.2, 0.3), (GPT_175B, 175.0, 6.0)],
    )
    def test_parameter_counts_match_paper_names(self, spec, expected_billion, tolerance):
        assert spec.parameters_billion() == pytest.approx(expected_billion, abs=tolerance)

    def test_paper_table1_architectures(self):
        assert GPT_2_5B.num_layers == 52 and GPT_2_5B.hidden_size == 1920
        assert GPT_8_3B.num_layers == 72 and GPT_8_3B.hidden_size == 3072
        assert GPT_9_2B.num_layers == 80

    def test_ffn_is_4x_hidden(self):
        assert GPT_8_3B.ffn_size == 4 * GPT_8_3B.hidden_size

    def test_catalogues(self):
        assert set(PAPER_MODELS) == {"GPT-2.5B", "GPT-8.3B"}
        assert SCALABILITY_MODELS[0] is GPT_2_5B and SCALABILITY_MODELS[-1] is GPT_175B
        sizes = [spec.total_parameters() for spec in SCALABILITY_MODELS]
        assert sizes == sorted(sizes)

    def test_invalid_spec_raises(self):
        with pytest.raises(ValueError):
            PaperModelSpec(name="bad", num_layers=0, hidden_size=64, num_heads=2)
        with pytest.raises(ValueError):
            PaperModelSpec(name="bad", num_layers=2, hidden_size=63, num_heads=2)


class TestPerStageAccounting:
    def test_stage_parameters_cover_total(self):
        num_stages = 4
        total = sum(GPT_8_3B.parameters_per_stage(num_stages, s) for s in range(num_stages))
        # The per-stage sum counts the word embedding twice (first and last stage
        # copies), exactly like the real pipeline layout.
        expected = GPT_8_3B.total_parameters() + GPT_8_3B.word_embedding_parameters()
        assert total == pytest.approx(expected, rel=1e-6)

    def test_first_and_last_stage_are_heavier(self):
        middle = GPT_8_3B.parameters_per_stage(4, 1)
        first = GPT_8_3B.parameters_per_stage(4, 0)
        last = GPT_8_3B.parameters_per_stage(4, 3)
        assert first > middle and last > middle

    def test_out_of_range_stage_raises(self):
        with pytest.raises(ValueError):
            GPT_8_3B.parameters_per_stage(4, 4)


class TestFunctionalConfigs:
    def test_presets_are_valid(self):
        assert FUNCTIONAL_TINY.num_layers >= 1
        assert FUNCTIONAL_SMALL.hidden_size % FUNCTIONAL_SMALL.num_heads == 0

    def test_functional_config_builder(self):
        config = functional_config(vocab_size=96, num_layers=3, hidden_size=24, num_heads=3)
        assert config.vocab_size == 96 and config.num_layers == 3
        assert config.parameter_count() > 0
