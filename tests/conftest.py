"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import LanguageModelingDataLoader, SyntheticCorpus, SyntheticCorpusConfig
from repro.nn.transformer import GPTModelConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for test inputs."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_config() -> GPTModelConfig:
    """A GPT configuration small enough for exact-gradient tests."""
    return GPTModelConfig(
        vocab_size=32,
        max_sequence_length=12,
        num_layers=2,
        hidden_size=16,
        num_heads=2,
    )


@pytest.fixture
def small_config() -> GPTModelConfig:
    """A slightly larger configuration used by training-behaviour tests."""
    return GPTModelConfig(
        vocab_size=64,
        max_sequence_length=16,
        num_layers=2,
        hidden_size=16,
        num_heads=2,
    )


@pytest.fixture
def corpus() -> SyntheticCorpus:
    """A small synthetic corpus shared across data/training tests."""
    return SyntheticCorpus(SyntheticCorpusConfig(vocab_size=64, seed=99))


@pytest.fixture
def loader(corpus) -> LanguageModelingDataLoader:
    """A loader producing 2 replicas x 2 micro-batches of short sequences."""
    return LanguageModelingDataLoader(
        corpus,
        sequence_length=12,
        micro_batch_size=2,
        num_micro_batches=2,
        data_parallel_degree=2,
    )


def numerical_gradient(function, array: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference numerical gradient of ``function`` w.r.t. ``array``.

    ``function`` must return a scalar and must not mutate ``array``.
    """
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    flat_grad = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = function()
        flat[index] = original - epsilon
        minus = function()
        flat[index] = original
        flat_grad[index] = (plus - minus) / (2 * epsilon)
    return grad
