"""Schedule synthesis (``Schedule.kind="auto"``) — validity, memory, parity, monotonicity.

Four layers of evidence, mirroring the issue's acceptance criteria:

* **fuzzed invariants** (hypothesis): for arbitrary (pp, micro_batches, cost
  ratios, cap), every synthesized schedule passes the split-backward validity
  checks, respects its per-stage memory budget, and its makespan is monotone
  non-increasing in the cap;
* **degeneration and dominance**: at ``memory_cap_factor=1.0`` auto matches
  zb1's bubble fraction within 1 % (exactly, in fact — zb1 wins ties), and at
  2.0 it is strictly better on the paper's GPT-8.3B PP4xDP4 layout;
* **weight parity**: the functional engine replaying a synthesized schedule
  leaves bit-identical gradients to the 1f1b loop, across caps and layouts and
  the zb1 edge cases the synthesizer inherits (mb == 1, pp == 1, mb < pp);
* **memory-model honesty**: the Fig. 12 report now carries the split-backward
  W stash, pinned 1f1b-vs-zb1 per stage.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.gpt_configs import GPT_8_3B, functional_config
from repro.nn.gpt_stage import build_gpt_stages
from repro.parallel.pipeline_engine import PipelineParallelEngine
from repro.parallel.pipeline_schedule import build_zb1_schedule
from repro.parallel.process_groups import ParallelLayout
from repro.parallel.scheduler import (
    CAP_LADDER,
    StageCosts,
    SynthesisSpec,
    evaluate_schedule,
    peak_stage_memory,
    stage_memory_budget,
    stage_memory_profile,
    synthesize_schedule,
    validate_schedule_ops,
)
from repro.plan import SCHEDULE_KINDS, SPLIT_BACKWARD_KINDS, validate_schedule_kind
from repro.simulator.cost_model import TrainingJob
from repro.simulator.executor import PipelineTimingSimulator
from repro.simulator.memory_model import MemoryModel
from repro.simulator.throughput import schedule_cap_sweep, schedule_throughput


def _spec(pp, mb, cap=1.0, f=1.0, b=2.0, w=1.0, delay=0.0):
    return SynthesisSpec(
        num_stages=pp,
        num_micro_batches=mb,
        costs=tuple(StageCosts(f, b, w) for _ in range(pp)),
        transfer_delay=delay,
        memory_cap_factor=cap,
    )


def _paper_job(**overrides) -> TrainingJob:
    defaults = dict(
        model=GPT_8_3B,
        layout=ParallelLayout(tensor_parallel=8, pipeline_parallel=4, data_parallel=4),
        micro_batch_size=8,
        global_batch_size=512,
        num_model_chunks=1,
    )
    defaults.update(overrides)
    return TrainingJob(**defaults)


# ---------------------------------------------------------------------------
# Synthesizer unit behaviour
# ---------------------------------------------------------------------------


class TestSynthesizer:
    def test_output_is_valid_and_within_budget(self):
        spec = _spec(4, 8, cap=2.0, delay=0.05)
        result = synthesize_schedule(spec)
        validate_schedule_ops(result.stage_ops(), 4, 8)
        for stage in range(4):
            assert result.peak_memory[stage] <= result.memory_budget[stage] + 1e-9

    def test_cap_one_degenerates_to_zb1(self):
        """At 1x memory the handcrafted ZB-H1 lists are the (tie-winning) answer."""
        for pp, mb in ((2, 4), (4, 8), (4, 16), (8, 8)):
            spec = _spec(pp, mb, cap=1.0, delay=0.05)
            result = synthesize_schedule(spec)
            zb1_makespan, zb1_bubble = evaluate_schedule(build_zb1_schedule(pp, mb), spec)
            assert result.makespan <= zb1_makespan + 1e-9, (pp, mb)
            assert result.bubble_fraction <= zb1_bubble + 1e-9, (pp, mb)
            if result.source == "zb1":
                assert result.stage_ops() == build_zb1_schedule(pp, mb)

    def test_higher_cap_strictly_beats_zb1_on_wide_pipeline(self):
        spec = _spec(4, 16, cap=2.0, delay=0.05)
        result = synthesize_schedule(spec)
        _, zb1_bubble = evaluate_schedule(build_zb1_schedule(4, 16), spec)
        assert result.bubble_fraction < zb1_bubble
        assert result.source.startswith("greedy@")

    def test_never_worse_than_zb1_at_any_cap(self):
        for cap in CAP_LADDER:
            spec = _spec(4, 8, cap=cap, delay=0.05)
            result = synthesize_schedule(spec)
            zb1_makespan, _ = evaluate_schedule(build_zb1_schedule(4, 8), spec)
            assert result.makespan <= zb1_makespan + 1e-9, cap

    def test_edge_case_layouts(self):
        """The zb1 edge cases the synthesizer inherits: mb==1, pp==1, mb<pp."""
        for pp, mb in ((4, 1), (1, 4), (1, 1), (4, 2), (6, 3)):
            for cap in (1.0, 2.0):
                result = synthesize_schedule(_spec(pp, mb, cap=cap))
                validate_schedule_ops(result.stage_ops(), pp, mb)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="num_stages"):
            _spec(0, 4)
        with pytest.raises(ValueError, match="num_micro_batches"):
            _spec(2, 0)
        with pytest.raises(ValueError, match="memory_cap_factor"):
            _spec(2, 4, cap=0.5)
        with pytest.raises(ValueError, match="non-negative"):
            StageCosts(-1.0, 2.0, 1.0)
        with pytest.raises(ValueError, match="one entry per stage"):
            SynthesisSpec(2, 4, costs=(StageCosts(1, 2, 1),))

    def test_validate_rejects_broken_op_lists(self):
        good = synthesize_schedule(_spec(2, 2)).stage_ops()
        # Drop one W pass.
        broken = [list(ops) for ops in good]
        broken[0] = [op for op in broken[0] if not (op.kind == "backward_weight" and op.micro_batch == 1)]
        with pytest.raises(ValueError, match="every micro-batch exactly once"):
            validate_schedule_ops(broken, 2, 2)
        # Swap F and B of one micro-batch (F must precede B).
        swapped = [list(ops) for ops in good]
        f = next(i for i, op in enumerate(swapped[0]) if op.kind == "forward" and op.micro_batch == 1)
        b = next(i for i, op in enumerate(swapped[0]) if op.kind == "backward_input" and op.micro_batch == 1)
        swapped[0][f], swapped[0][b] = swapped[0][b], swapped[0][f]
        with pytest.raises(ValueError):
            validate_schedule_ops(swapped, 2, 2)

    def test_validate_catches_cross_stage_deadlock(self):
        """Per-stage ascending order alone does not imply deadlock-freedom."""
        from repro.parallel.pipeline_schedule import PipelineOp

        F, B, W = "forward", "backward_input", "backward_weight"
        # Stage 0 insists on B0 before F1; stage 1 runs F0,F1 before B0 — but
        # stage 0's B0 needs stage 1's B0, which needs stage 1's F1, which
        # needs stage 0's F1: a cycle.
        deadlocked = [
            [PipelineOp(F, 0), PipelineOp(B, 0), PipelineOp(W, 0), PipelineOp(F, 1), PipelineOp(B, 1), PipelineOp(W, 1)],
            [PipelineOp(F, 0), PipelineOp(F, 1), PipelineOp(B, 0), PipelineOp(W, 0), PipelineOp(B, 1), PipelineOp(W, 1)],
        ]
        with pytest.raises(RuntimeError, match="deadlock"):
            validate_schedule_ops(deadlocked, 2, 2)

    def test_stage_memory_profile_matches_peak(self):
        ops = synthesize_schedule(_spec(4, 8, cap=2.0)).stage_ops()
        for stage_ops in ops:
            in_flight, pending = stage_memory_profile(stage_ops)
            # With unit activation and stash bytes, the joint peak is bounded
            # by the sum of the individual peaks and dominated by either alone.
            joint = peak_stage_memory(stage_ops, 1.0, 1.0)
            assert max(in_flight, pending) <= joint <= in_flight + pending


# ---------------------------------------------------------------------------
# Hypothesis fuzz: validity + budget + monotone bubble-vs-cap
# ---------------------------------------------------------------------------


class TestFuzzedInvariants:
    @given(
        pp=st.integers(min_value=1, max_value=6),
        mb=st.integers(min_value=1, max_value=10),
        forward=st.floats(min_value=0.1, max_value=4.0),
        backward=st.floats(min_value=0.1, max_value=4.0),
        weight=st.floats(min_value=0.1, max_value=4.0),
        delay=st.floats(min_value=0.0, max_value=0.5),
        cap=st.floats(min_value=1.0, max_value=4.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_synthesized_schedules_are_valid_and_fit(
        self, pp, mb, forward, backward, weight, delay, cap
    ):
        spec = _spec(pp, mb, cap=cap, f=forward, b=backward, w=weight, delay=delay)
        result = synthesize_schedule(spec)
        validate_schedule_ops(result.stage_ops(), pp, mb)
        for stage in range(pp):
            budget = stage_memory_budget(spec, stage)
            assert result.peak_memory[stage] <= budget + 1e-9
            assert result.memory_budget[stage] == pytest.approx(budget)

    @given(
        pp=st.integers(min_value=2, max_value=5),
        mb=st.integers(min_value=2, max_value=10),
        forward=st.floats(min_value=0.2, max_value=2.0),
        backward=st.floats(min_value=0.2, max_value=2.0),
        weight=st.floats(min_value=0.2, max_value=2.0),
        delay=st.floats(min_value=0.0, max_value=0.2),
    )
    @settings(max_examples=25, deadline=None)
    def test_makespan_monotone_in_cap(self, pp, mb, forward, backward, weight, delay):
        makespans = []
        for cap in (1.0, 1.5, 2.0, 3.0):
            spec = _spec(pp, mb, cap=cap, f=forward, b=backward, w=weight, delay=delay)
            makespans.append(synthesize_schedule(spec).makespan)
        for tighter, looser in zip(makespans, makespans[1:]):
            assert looser <= tighter + 1e-9

    @given(
        pp=st.integers(min_value=2, max_value=4),
        mb=st.integers(min_value=2, max_value=6),
        cap=st.sampled_from((1.0, 1.5, 2.0)),
    )
    @settings(max_examples=15, deadline=None)
    def test_fuzzed_engine_weight_parity(self, pp, mb, cap):
        assert _max_grad_delta(pp, mb, "auto", cap) == 0.0


# ---------------------------------------------------------------------------
# Functional engine: weight parity (bit-identical to 1f1b)
# ---------------------------------------------------------------------------


def _max_grad_delta(pp: int, mb: int, kind: str, cap: float = 1.0, seed: int = 11) -> float:
    """Train one iteration under ``kind`` and 1f1b; return the max |grad delta|."""
    config = functional_config(
        vocab_size=61, sequence_length=12, num_layers=max(pp, 4), hidden_size=16, num_heads=2
    )
    rng = np.random.default_rng(seed)
    micro_batches = [
        (
            rng.integers(0, config.vocab_size, size=(2, 12)),
            rng.integers(0, config.vocab_size, size=(2, 12)),
        )
        for _ in range(mb)
    ]

    def grads(schedule_kind: str, memory_cap: float) -> list[np.ndarray]:
        stages = build_gpt_stages(config, pp, seed=seed)
        engine = PipelineParallelEngine(
            stages, schedule_kind=schedule_kind, memory_cap_factor=memory_cap
        )
        engine.zero_grad()
        engine.run_iteration(micro_batches)
        return [parameter.grad.copy() for parameter in engine.parameters()]

    worst = 0.0
    for base, other in zip(grads("1f1b", 1.0), grads(kind, cap)):
        worst = max(worst, float(np.max(np.abs(base - other))))
    return worst


class TestEngineParity:
    @pytest.mark.parametrize("cap", [1.0, 1.5, 2.0, 4.0])
    def test_auto_bit_identical_across_caps(self, cap):
        assert _max_grad_delta(4, 8, "auto", cap) == 0.0

    @pytest.mark.parametrize("pp,mb", [(2, 6), (3, 5), (4, 4)])
    def test_auto_bit_identical_across_layouts(self, pp, mb):
        assert _max_grad_delta(pp, mb, "auto", 2.0) == 0.0

    # The zb1 edge cases the synthesizer inherits (satellite): parity, not
    # just bubble numbers.
    @pytest.mark.parametrize("kind", SPLIT_BACKWARD_KINDS)
    @pytest.mark.parametrize(
        "pp,mb",
        [(4, 1), (1, 4), (1, 1), (4, 2), (3, 2)],  # mb==1, pp==1, mb<pp
    )
    def test_edge_case_weight_parity(self, kind, pp, mb):
        assert _max_grad_delta(pp, mb, kind, 1.0) == 0.0

    def test_smoke_pp4_mb8(self):
        """The CI fast-tier smoke: synthesize + replay one auto schedule end to end."""
        spec = _spec(4, 8, cap=1.5)
        result = synthesize_schedule(spec)
        validate_schedule_ops(result.stage_ops(), 4, 8)
        assert _max_grad_delta(4, 8, "auto", 1.5) == 0.0
        timing = PipelineTimingSimulator(
            _paper_job(schedule_kind="auto", memory_cap_factor=1.5)
        ).run()
        assert timing.schedule_kind == "auto"
        assert 0.0 < timing.bubble_fraction < 1.0

    def test_engine_rejects_bad_kind_and_cap(self):
        config = functional_config(vocab_size=32, sequence_length=8, num_layers=2, hidden_size=8, num_heads=2)
        stages = build_gpt_stages(config, 2, seed=0)
        with pytest.raises(ValueError, match="unknown schedule kind"):
            PipelineParallelEngine(stages, schedule_kind="gpipe")
        with pytest.raises(ValueError, match="memory_cap_factor"):
            PipelineParallelEngine(stages, schedule_kind="auto", memory_cap_factor=0.5)


# ---------------------------------------------------------------------------
# Simulator: acceptance numbers on the paper layout + loud kind rejection
# ---------------------------------------------------------------------------


class TestSimulatorAcceptance:
    def test_cap_one_matches_zb1_within_one_percent(self):
        points = {p.kind: p for p in schedule_throughput(_paper_job(), kinds=("zb1",))}
        auto = schedule_cap_sweep(_paper_job(), caps=(1.0,))[0]
        zb1 = points["zb1"]
        assert auto.bubble_fraction == pytest.approx(zb1.bubble_fraction, rel=0.01)

    def test_cap_two_strictly_beats_zb1_on_gpt83b_pp4(self):
        zb1 = {p.kind: p for p in schedule_throughput(_paper_job(), kinds=("zb1",))}["zb1"]
        auto = schedule_cap_sweep(_paper_job(), caps=(2.0,))[0]
        assert auto.bubble_fraction < zb1.bubble_fraction
        assert auto.iteration_time_s < zb1.iteration_time_s

    def test_cap_sweep_monotone(self):
        sweep = schedule_cap_sweep(_paper_job(), caps=(1.0, 1.5, 2.0))
        bubbles = [point.bubble_fraction for point in sweep]
        assert bubbles == sorted(bubbles, reverse=True) or all(
            later <= earlier + 1e-9 for earlier, later in zip(bubbles, bubbles[1:])
        )
        assert [point.memory_cap_factor for point in sweep] == [1.0, 1.5, 2.0]

    def test_schedule_throughput_rejects_unknown_kind_loudly(self):
        with pytest.raises(ValueError, match="unknown schedule kind"):
            schedule_throughput(_paper_job(), kinds=("1f1b", "gpipe"))

    def test_training_job_rejects_unknown_kind_and_bad_cap(self):
        with pytest.raises(ValueError, match="unknown schedule kind"):
            _paper_job(schedule_kind="gpipe")
        with pytest.raises(ValueError, match="memory_cap_factor"):
            _paper_job(schedule_kind="auto", memory_cap_factor=0.9)

    def test_shared_validator_vocabulary(self):
        assert "auto" in SCHEDULE_KINDS
        assert set(SPLIT_BACKWARD_KINDS) == {"zb1", "auto"}
        assert validate_schedule_kind("zb1") == "zb1"
        with pytest.raises(ValueError, match="my-context"):
            validate_schedule_kind("nope", context="my-context")


# ---------------------------------------------------------------------------
# Memory model: the W-stash term (satellite bugfix)
# ---------------------------------------------------------------------------


class TestMemoryModelStash:
    def test_1f1b_has_no_stash(self):
        report = MemoryModel(_paper_job(schedule_kind="1f1b")).peak_report()
        assert report.weight_stash == 0.0

    def test_zb1_peak_exceeds_1f1b_by_the_stash(self):
        """Regression pin: zb1 = 1f1b + per-stage stash term, nothing else."""
        base_model = MemoryModel(_paper_job(schedule_kind="1f1b"))
        zb1_model = MemoryModel(_paper_job(schedule_kind="zb1"))
        for stage in range(4):
            base = base_model.stage_report(stage)
            zb1 = zb1_model.stage_report(stage)
            assert zb1.weight_stash > 0.0, stage
            # Same activations (zb1 keeps the 1F1B in-flight profile) …
            assert zb1.activations == pytest.approx(base.activations), stage
            # … so the whole difference is the stash term.
            assert zb1.total - base.total == pytest.approx(zb1.weight_stash), stage
            expected_pending = zb1_model.cost.weight_stash_bytes_per_microbatch(stage)
            in_flight, pending = stage_memory_profile(build_zb1_schedule(4, 16)[stage])
            assert zb1.weight_stash == pytest.approx(expected_pending * pending), stage

    def test_auto_at_higher_cap_reports_more_activation_memory(self):
        cap1 = MemoryModel(_paper_job(schedule_kind="auto", memory_cap_factor=1.0)).peak_report()
        cap2 = MemoryModel(_paper_job(schedule_kind="auto", memory_cap_factor=2.0)).peak_report()
        assert cap2.activations >= cap1.activations
        assert cap2.total > cap1.total

    def test_auto_report_matches_synthesized_op_lists(self):
        job = _paper_job(schedule_kind="auto", memory_cap_factor=2.0)
        model = MemoryModel(job)
        from repro.simulator.executor import build_job_schedule

        schedule = build_job_schedule(job)
        for stage in range(4):
            in_flight, pending = stage_memory_profile(schedule[stage])
            report = model.stage_report(stage)
            assert report.activations == pytest.approx(
                model.cost.activation_bytes_per_microbatch(stage) * in_flight
            )
            assert report.weight_stash == pytest.approx(
                model.cost.weight_stash_bytes_per_microbatch(stage) * pending
            )
