"""Tests for fused embedding synchronisation (functional path and cost model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fused_embedding import (
    EmbeddingSynchronizer,
    baseline_embedding_cost,
    embedding_sync_improvement,
    fused_embedding_cost,
)
from repro.nn.gpt_stage import build_gpt_stages
from repro.parallel.collectives import CommunicationLog
from repro.parallel.pipeline_engine import PipelineParallelEngine


def run_replicas(config, rng, num_replicas=2, num_stages=2, seed=0):
    """Build replicas and run one iteration so that embedding gradients exist."""
    replicas = [build_gpt_stages(config, num_stages, seed=seed) for _ in range(num_replicas)]
    for replica_index, replica in enumerate(replicas):
        rng_local = np.random.default_rng(1000 + replica_index)
        tokens = rng_local.integers(0, config.vocab_size, size=(2, 8))
        targets = rng_local.integers(0, config.vocab_size, size=(2, 8))
        PipelineParallelEngine(replica).run_iteration([(tokens, targets)])
    return replicas


class TestCostModel:
    def test_equation_15(self):
        # D = 4: baseline cost factor (3D-2)/D = 2.5.
        assert baseline_embedding_cost(1.0, 4) == pytest.approx(2.5)

    def test_equation_16(self):
        # D = 4: fused cost factor (2D-1)/D = 1.75.
        assert fused_embedding_cost(1.0, 4) == pytest.approx(1.75)

    def test_paper_improvement_value(self):
        """Section 6: 42.9 % at D=4, approaching 50 % as D grows."""
        assert embedding_sync_improvement(4) == pytest.approx(0.4286, abs=1e-3)
        assert embedding_sync_improvement(64) == pytest.approx(0.5, abs=0.02)
        assert embedding_sync_improvement(64) < 0.5

    def test_improvement_monotonically_increases_with_dp(self):
        improvements = [embedding_sync_improvement(d) for d in (2, 4, 8, 16, 32)]
        assert all(a < b for a, b in zip(improvements, improvements[1:]))

    def test_invalid_dp_raises(self):
        with pytest.raises(ValueError):
            baseline_embedding_cost(1.0, 0)
        with pytest.raises(ValueError):
            fused_embedding_cost(1.0, -1)

    def test_single_replica_baseline_is_just_the_sync(self):
        assert baseline_embedding_cost(1.0, 1) == pytest.approx(1.0)


class TestFunctionalSynchroniser:
    def test_fused_and_baseline_are_numerically_identical(self, tiny_config, rng):
        """The fusion must not change the mathematical outcome (Section 6)."""
        replicas_a = run_replicas(tiny_config, rng)
        replicas_b = run_replicas(tiny_config, rng)

        EmbeddingSynchronizer(replicas_a, fused=False).synchronize()
        EmbeddingSynchronizer(replicas_b, fused=True).synchronize()

        grad_a = replicas_a[0][0].token_embedding.weight.grad
        grad_b = replicas_b[0][0].token_embedding.weight.grad
        assert np.allclose(grad_a, grad_b, atol=1e-12)

    def test_all_copies_agree_after_sync(self, tiny_config, rng):
        replicas = run_replicas(tiny_config, rng)
        synchronizer = EmbeddingSynchronizer(replicas, fused=True)
        synchronizer.synchronize()
        assert synchronizer.max_copy_divergence() < 1e-12

    def test_result_is_mean_over_replicas_of_summed_copies(self, tiny_config, rng):
        replicas = run_replicas(tiny_config, rng)
        expected = np.mean(
            [
                replica[0].token_embedding.weight.grad + replica[-1].output_embedding.weight.grad
                for replica in replicas
            ],
            axis=0,
        )
        EmbeddingSynchronizer(replicas, fused=True).synchronize()
        assert np.allclose(replicas[0][0].token_embedding.weight.grad, expected, atol=1e-12)

    def test_traffic_pattern_differs(self, tiny_config, rng):
        """Baseline: per-copy DP all-reduce + 2-way sync; fused: one big all-reduce."""
        replicas = run_replicas(tiny_config, rng)
        baseline_log = CommunicationLog()
        EmbeddingSynchronizer(replicas, log=baseline_log, fused=False).synchronize()
        assert baseline_log.count(category="embedding_dp") == 2
        assert baseline_log.count(category="embedding_sync") == 2

        replicas = run_replicas(tiny_config, rng)
        fused_log = CommunicationLog()
        EmbeddingSynchronizer(replicas, log=fused_log, fused=True).synchronize()
        assert fused_log.count(category="embedding_dp") == 0
        assert fused_log.count(category="embedding_sync") == 1
        assert len(fused_log.records[0].ranks) == 4  # 2 copies x 2 replicas

    def test_fused_wire_cost_is_lower(self, tiny_config, rng):
        def total_network_bytes(log: CommunicationLog) -> float:
            """Bytes moved across the whole network (per-rank wire x participant count)."""
            return sum(record.wire_bytes * len(record.ranks) for record in log.records)

        replicas = run_replicas(tiny_config, rng, num_replicas=2)
        baseline_log = CommunicationLog()
        EmbeddingSynchronizer(replicas, log=baseline_log, fused=False).synchronize()
        replicas = run_replicas(tiny_config, rng, num_replicas=2)
        fused_log = CommunicationLog()
        EmbeddingSynchronizer(replicas, log=fused_log, fused=True).synchronize()

        baseline_bytes = total_network_bytes(baseline_log)
        fused_bytes = total_network_bytes(fused_log)
        assert fused_bytes < baseline_bytes
        # The network-wide cost ratio matches the analytic model for D = 2.
        expected_ratio = fused_embedding_cost(1.0, 2) / baseline_embedding_cost(1.0, 2)
        assert fused_bytes / baseline_bytes == pytest.approx(expected_ratio, rel=0.05)

    def test_single_stage_pipeline_still_ties_the_copies(self, tiny_config, rng):
        replicas = run_replicas(tiny_config, rng, num_stages=1)
        synchronizer = EmbeddingSynchronizer(replicas, fused=False)
        synchronizer.synchronize()
        stage = replicas[0][0]
        assert np.allclose(
            stage.token_embedding.weight.grad, stage.output_embedding.weight.grad, atol=1e-12
        )

    def test_empty_replicas_raise(self):
        with pytest.raises(ValueError):
            EmbeddingSynchronizer([])
