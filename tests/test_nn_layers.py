"""Tests for the basic NumPy modules: Linear, Embedding, LayerNorm, MLP, attention.

Every backward pass is validated against a central-difference numerical gradient.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.embedding import Embedding
from repro.nn.layernorm import LayerNorm
from repro.nn.linear import Linear
from repro.nn.mlp import TransformerMLP
from repro.nn.module import Module, flatten_gradients, unflatten_to_gradients

from tests.conftest import numerical_gradient


class TestModuleBase:
    def test_named_parameters_are_qualified(self, rng):
        outer = Module()
        inner = Linear(3, 4, rng)
        outer.register_module("proj", inner)
        names = [name for name, _ in outer.named_parameters()]
        assert "proj.weight" in names and "proj.bias" in names

    def test_state_dict_round_trip(self, rng):
        layer = Linear(3, 4, rng)
        state = layer.state_dict()
        layer.weight.data[...] = 0.0
        layer.load_state_dict(state)
        assert not np.all(layer.weight.data == 0.0)

    def test_load_state_dict_rejects_unknown_keys(self, rng):
        layer = Linear(3, 4, rng)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": layer.weight.data})  # missing bias

    def test_flatten_unflatten_gradients(self, rng):
        layer = Linear(3, 4, rng)
        layer.weight.grad[...] = 1.0
        layer.bias.grad[...] = 2.0
        flat = flatten_gradients(layer.parameters())
        assert flat.size == 3 * 4 + 4
        unflatten_to_gradients(flat * 0.5, layer.parameters())
        assert np.all(layer.weight.grad == 0.5)
        assert np.all(layer.bias.grad == 1.0)

    def test_train_eval_propagates(self, rng):
        mlp = TransformerMLP(8, rng)
        mlp.eval()
        assert not mlp.fc.training
        mlp.train()
        assert mlp.proj.training


class TestLinear:
    def test_forward_matches_matmul(self, rng):
        layer = Linear(3, 5, rng)
        x = rng.normal(size=(2, 4, 3))
        out, _ = layer.forward(x)
        assert out.shape == (2, 4, 5)
        assert np.allclose(out, x @ layer.weight.data + layer.bias.data)

    def test_backward_matches_numerical(self, rng):
        layer = Linear(3, 4, rng)
        x = rng.normal(size=(2, 3))
        weights = rng.normal(size=(2, 4))

        def loss_for_weight():
            out, _ = layer.forward(x)
            return float(np.sum(out * weights))

        out, cache = layer.forward(x)
        grad_input = layer.backward(weights, cache)
        assert np.allclose(
            layer.weight.grad, numerical_gradient(loss_for_weight, layer.weight.data), atol=1e-6
        )
        assert np.allclose(
            layer.bias.grad, numerical_gradient(loss_for_weight, layer.bias.data), atol=1e-6
        )
        assert np.allclose(grad_input, numerical_gradient(loss_for_weight, x), atol=1e-6)

    def test_no_bias_variant(self, rng):
        layer = Linear(3, 4, rng, bias=False)
        assert layer.bias is None
        out, cache = layer.forward(rng.normal(size=(2, 3)))
        layer.backward(np.ones((2, 4)), cache)  # must not raise


class TestEmbedding:
    def test_lookup_returns_rows(self, rng):
        embedding = Embedding(10, 4, rng)
        indices = np.array([[1, 3], [0, 9]])
        out, _ = embedding.forward(indices)
        assert out.shape == (2, 2, 4)
        assert np.allclose(out[0, 0], embedding.weight.data[1])

    def test_out_of_range_raises(self, rng):
        embedding = Embedding(10, 4, rng)
        with pytest.raises(IndexError):
            embedding.forward(np.array([[10]]))

    def test_backward_scatter_adds(self, rng):
        embedding = Embedding(6, 3, rng)
        indices = np.array([[1, 1, 2]])
        out, cache = embedding.forward(indices)
        grad = np.ones_like(out)
        embedding.backward(grad, cache)
        assert np.allclose(embedding.weight.grad[1], 2.0)  # index 1 appears twice
        assert np.allclose(embedding.weight.grad[2], 1.0)
        assert np.allclose(embedding.weight.grad[0], 0.0)

    def test_tied_projection_backward_matches_numerical(self, rng):
        embedding = Embedding(6, 3, rng)
        hidden = rng.normal(size=(2, 4, 3))
        weights = rng.normal(size=(2, 4, 6))

        def loss():
            return float(np.sum(embedding.project_to_vocab(hidden) * weights))

        grad_hidden = embedding.project_to_vocab_backward(weights, hidden)
        assert np.allclose(
            embedding.weight.grad, numerical_gradient(loss, embedding.weight.data), atol=1e-6
        )
        assert np.allclose(grad_hidden, numerical_gradient(loss, hidden), atol=1e-6)


class TestLayerNormModule:
    def test_backward_matches_numerical(self, rng):
        layer = LayerNorm(6)
        layer.gamma.data[...] = rng.normal(size=6)
        x = rng.normal(size=(3, 6))
        weights = rng.normal(size=(3, 6))

        def loss():
            out, _ = layer.forward(x)
            return float(np.sum(out * weights))

        out, cache = layer.forward(x)
        grad_input = layer.backward(weights, cache)
        assert np.allclose(grad_input, numerical_gradient(loss, x), atol=1e-5)
        assert np.allclose(layer.gamma.grad, numerical_gradient(loss, layer.gamma.data), atol=1e-5)
        assert np.allclose(layer.beta.grad, numerical_gradient(loss, layer.beta.data), atol=1e-5)


class TestTransformerMLP:
    def test_shapes(self, rng):
        mlp = TransformerMLP(8, rng)
        out, _ = mlp.forward(rng.normal(size=(2, 3, 8)))
        assert out.shape == (2, 3, 8)
        assert mlp.ffn_size == 32

    def test_backward_matches_numerical(self, rng):
        mlp = TransformerMLP(4, rng)
        x = rng.normal(size=(2, 4))
        weights = rng.normal(size=(2, 4))

        def loss():
            out, _ = mlp.forward(x)
            return float(np.sum(out * weights))

        out, cache = mlp.forward(x)
        grad_input = mlp.backward(weights, cache)
        assert np.allclose(grad_input, numerical_gradient(loss, x), atol=1e-5)
        assert np.allclose(
            mlp.fc.weight.grad, numerical_gradient(loss, mlp.fc.weight.data), atol=1e-5
        )


class TestAttention:
    def test_output_shape(self, rng):
        attention = MultiHeadSelfAttention(8, 2, rng)
        out, _ = attention.forward(rng.normal(size=(2, 5, 8)))
        assert out.shape == (2, 5, 8)

    def test_hidden_must_divide_heads(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3, rng)

    def test_causality(self, rng):
        """Changing a later token must not change the output at earlier positions."""
        attention = MultiHeadSelfAttention(8, 2, rng)
        x = rng.normal(size=(1, 6, 8))
        out_a, _ = attention.forward(x)
        x_modified = x.copy()
        x_modified[0, 5] += 10.0
        out_b, _ = attention.forward(x_modified)
        assert np.allclose(out_a[0, :5], out_b[0, :5])
        assert not np.allclose(out_a[0, 5], out_b[0, 5])

    def test_backward_matches_numerical(self, rng):
        attention = MultiHeadSelfAttention(4, 2, rng)
        x = rng.normal(size=(1, 3, 4))
        weights = rng.normal(size=(1, 3, 4))

        def loss():
            out, _ = attention.forward(x)
            return float(np.sum(out * weights))

        out, cache = attention.forward(x)
        grad_input = attention.backward(weights, cache)
        assert np.allclose(grad_input, numerical_gradient(loss, x), atol=1e-5)
        assert np.allclose(
            attention.qkv.weight.grad,
            numerical_gradient(loss, attention.qkv.weight.data),
            atol=1e-5,
        )
        assert np.allclose(
            attention.proj.weight.grad,
            numerical_gradient(loss, attention.proj.weight.data),
            atol=1e-5,
        )
