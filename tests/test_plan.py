"""Tests for the declarative ParallelPlan API and its consumer wiring.

Covers the four contracts the plan redesign introduces:

* **round-trip** — ``from_dict(to_dict(p)) == p`` (hypothesis property) and
  invalid boundary/codec/knob combinations raise at construction;
* **shim equivalence** — every legacy ``EngineCompressionConfig`` spelling and
  its plan-path equivalent produce bit-identical weights and an identical
  communication-log stream through the engine;
* **cross-layer parity** — ``CompressionPlan.from_plan`` (simulator) and
  ``plan.engine_config()`` (engine) agree on codec/rank/bits/fraction and the
  selected stage set per boundary, and the PowerSGD byte models agree exactly;
* **CLI** — ``repro train --preset``, ``--plan file.json``, and the ``repro
  plan show/validate/diff`` subcommands.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cli
from repro.compression import PowerSGDCompressor
from repro.compression.base import UNCOMPRESSED_BYTES_PER_ELEMENT
from repro.core.config import EngineCompressionConfig, OptimusCCConfig
from repro.core.selective_stage import select_compressed_stages
from repro.models.gpt_configs import functional_config
from repro.parallel.engine import ThreeDParallelEngine
from repro.plan import (
    BOUNDARY_CODECS,
    PLAN_PRESETS,
    Boundary,
    CompressionSpec,
    ParallelPlan,
    Schedule,
    Topology,
)
from repro.simulator.cost_model import CostModel, TrainingJob
from repro.simulator.executor import CompressionPlan

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples" / "plans"


# ---------------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------------


def spec_strategy(boundary: Boundary) -> st.SearchStrategy[CompressionSpec]:
    return st.builds(
        CompressionSpec,
        codec=st.sampled_from(BOUNDARY_CODECS[boundary]),
        rank=st.integers(min_value=1, max_value=256),
        bits=st.integers(min_value=1, max_value=8),
        fraction=st.floats(min_value=0.01, max_value=1.0),
        error_feedback=st.booleans(),
        stage_fraction=st.floats(min_value=0.0, max_value=1.0),
        min_elements=st.integers(min_value=0, max_value=4096),
        bucket_bytes=st.integers(min_value=1, max_value=1 << 20),
        epilogue_only=st.booleans(),
        compress_forward=st.booleans(),
    )


plan_strategy = st.builds(
    ParallelPlan,
    topology=st.builds(
        Topology,
        dp=st.integers(min_value=1, max_value=8),
        pp=st.integers(min_value=1, max_value=8),
        tp=st.integers(min_value=1, max_value=8),
        micro_batches=st.integers(min_value=1, max_value=16),
    ),
    schedule=st.one_of(
        st.builds(
            Schedule,
            kind=st.sampled_from(("1f1b", "serial")),
            num_model_chunks=st.integers(min_value=1, max_value=4),
            dp_fire=st.sampled_from(("stage", "micro_batch")),
        ),
        # zb1 is a plain schedule: num_model_chunks is pinned at 1.
        st.builds(
            Schedule,
            kind=st.just("zb1"),
            num_model_chunks=st.just(1),
            dp_fire=st.sampled_from(("stage", "micro_batch")),
        ),
    ),
    compression=st.fixed_dictionaries(
        {
            Boundary.DP: spec_strategy(Boundary.DP),
            Boundary.PP: spec_strategy(Boundary.PP),
            Boundary.EMBEDDING: spec_strategy(Boundary.EMBEDDING),
        }
    ),
)


# ---------------------------------------------------------------------------------
# Round-trip and validation
# ---------------------------------------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(plan=plan_strategy)
    def test_dict_round_trip(self, plan):
        assert ParallelPlan.from_dict(plan.to_dict()) == plan

    @settings(max_examples=30, deadline=None)
    @given(plan=plan_strategy)
    def test_json_round_trip(self, plan):
        assert ParallelPlan.from_json(plan.to_json()) == plan

    @settings(max_examples=30, deadline=None)
    @given(plan=plan_strategy)
    def test_json_is_plain_data(self, plan):
        payload = json.loads(plan.to_json())
        assert set(payload) == {"topology", "schedule", "compression"}
        assert set(payload["compression"]) == {"dp", "pp", "embedding"}

    def test_save_load_round_trip(self, tmp_path):
        plan = ParallelPlan.preset("cb_fe_sc")
        path = tmp_path / "plan.json"
        plan.save(path)
        assert ParallelPlan.load(path) == plan

    def test_string_boundary_keys_accepted(self):
        plan = ParallelPlan(compression={"dp": CompressionSpec(codec="qsgd", bits=2)})
        assert plan.spec(Boundary.DP).codec == "qsgd"

    def test_partial_dicts_take_defaults(self):
        plan = ParallelPlan.from_dict(
            {"compression": {"pp": {"codec": "powersgd", "rank": 8}}}
        )
        assert plan.spec(Boundary.PP).rank == 8
        assert plan.spec(Boundary.PP).epilogue_only  # default
        assert plan.spec(Boundary.DP).codec == "none"
        assert plan.topology == Topology()


class TestValidation:
    @pytest.mark.parametrize(
        "boundary, codec",
        [
            (Boundary.PP, "qsgd"),
            (Boundary.PP, "fused"),
            (Boundary.DP, "fused"),
            (Boundary.EMBEDDING, "powersgd"),
            (Boundary.EMBEDDING, "topk"),
        ],
    )
    def test_codec_not_valid_at_boundary(self, boundary, codec):
        with pytest.raises(ValueError, match="not valid at"):
            ParallelPlan(compression={boundary: CompressionSpec(codec=codec)})

    def test_unknown_codec(self):
        with pytest.raises(ValueError):
            CompressionSpec(codec="zip")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rank": 0},
            {"bits": 0},
            {"bits": 9},
            {"fraction": 0.0},
            {"fraction": 1.5},
            {"stage_fraction": -0.1},
            {"stage_fraction": 1.5},
            {"min_elements": -1},
            {"bucket_bytes": 0},
        ],
    )
    def test_bad_spec_knobs(self, kwargs):
        with pytest.raises(ValueError):
            CompressionSpec(**kwargs)

    def test_unknown_boundary_key(self):
        with pytest.raises(ValueError, match="unknown boundary"):
            ParallelPlan(compression={"tensor": CompressionSpec()})

    def test_unknown_spec_field(self):
        with pytest.raises(ValueError, match="unknown CompressionSpec field"):
            ParallelPlan.from_dict({"compression": {"dp": {"codec": "none", "ranks": 4}}})

    def test_unknown_section(self):
        with pytest.raises(ValueError, match="unknown plan section"):
            ParallelPlan.from_dict({"topo": {}})

    def test_bad_topology(self):
        with pytest.raises(ValueError):
            Topology(dp=0)
        with pytest.raises(ValueError):
            ParallelPlan.from_dict({"topology": {"dp": 2, "nodes": 4}})

    def test_bad_schedule_kind(self):
        with pytest.raises(ValueError, match="unknown schedule kind"):
            Schedule(kind="gpipe")


class TestPlanHelpers:
    def test_presets_cover_the_paper_nomenclature(self):
        assert set(PLAN_PRESETS) == {
            "baseline",
            "cb",
            "cb_non_lep",
            "naive_cb",
            "cb_fe",
            "cb_fe_sc",
            "naive_dp",
            "optimus_topk",
            "zb1",
            "auto",
        }
        for name in PLAN_PRESETS:
            plan = ParallelPlan.preset(name)
            if name in ("zb1", "auto"):
                # Schedule presets, not compression stacks: the technique
                # flags are the baseline's.
                assert plan.schedule.kind == name
                assert plan.optimus_config() == OptimusCCConfig.baseline()
                if name == "auto":
                    assert plan.schedule.memory_cap_factor == 1.5
                continue
            assert plan.optimus_config() == getattr(OptimusCCConfig, name)()

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown plan preset"):
            ParallelPlan.preset("warp")

    def test_with_boundary_is_a_sweep_helper(self):
        base = ParallelPlan.preset("cb_fe_sc")
        swept = base.with_boundary(Boundary.DP, codec="topk", fraction=0.1)
        assert swept.spec(Boundary.DP).codec == "topk"
        assert base.spec(Boundary.DP).codec == "powersgd"  # original untouched
        assert swept.spec(Boundary.PP) == base.spec(Boundary.PP)

    def test_with_schedule_and_topology(self):
        plan = ParallelPlan.baseline().with_schedule(kind="serial").with_topology(pp=8)
        assert not plan.schedule.dp_overlap
        assert plan.topology.pp == 8

    def test_proxy_scaled_caps_ranks(self):
        plan = ParallelPlan.preset("cb_fe_sc").proxy_scaled()
        assert plan.spec(Boundary.PP).rank == 2
        assert plan.spec(Boundary.DP).rank == 2

    def test_describe_folds_in_overlap_and_bucket_state(self):
        overlapped = ParallelPlan.preset("cb_fe_sc")
        serial = overlapped.with_schedule(kind="serial")
        rebucketed = overlapped.with_boundary(Boundary.DP, bucket_bytes=128 * 1024)
        labels = {overlapped.describe(), serial.describe(), rebucketed.describe()}
        assert len(labels) == 3  # the old EngineCompressionConfig label collapsed these
        assert "overlap/64KiB" in overlapped.describe()
        assert "serial-dp" in serial.describe()
        assert "overlap/128KiB" in rebucketed.describe()

    def test_diff_reports_differing_knobs_only(self):
        a = ParallelPlan.preset("cb_fe")
        b = ParallelPlan.preset("cb_fe_sc")
        delta = a.diff(b)
        assert delta == {
            "compression.dp.codec": ("none", "powersgd"),
            "compression.dp.stage_fraction": (1.0, 0.75),
        }
        assert a.diff(a) == {}

    def test_training_job_delivers_schedule_and_topology(self):
        from repro.models.gpt_configs import GPT_2_5B

        plan = ParallelPlan.baseline().with_topology(
            dp=4, pp=4, tp=8, micro_batches=16
        ).with_schedule(num_model_chunks=2)
        job = plan.training_job(GPT_2_5B)
        assert job.layout.data_parallel == 4
        assert job.layout.pipeline_parallel == 4
        assert job.layout.tensor_parallel == 8
        assert job.num_micro_batches == 16
        assert job.num_model_chunks == 2
        # Chunk count changes the simulated schedule, proving delivery.
        from repro.simulator.executor import PipelineTimingSimulator

        chunked = PipelineTimingSimulator(job, plan.compression_plan()).run()
        plain_job = plan.with_schedule(num_model_chunks=1).training_job(GPT_2_5B)
        plain = PipelineTimingSimulator(plain_job, plan.compression_plan()).run()
        assert chunked.iteration_time != plain.iteration_time

    def test_non_powersgd_dp_codec_is_not_misrepresented(self):
        plan = ParallelPlan.baseline().with_boundary(
            Boundary.DP, codec="topk", fraction=0.05, stage_fraction=1.0
        )
        optimus = plan.optimus_config()
        assert optimus.dp_stage_fraction == 0.0  # no false PowerSGD-SC claim
        assert plan.engine_config().dp_codec == "topk"  # the codec still runs
        assert CompressionPlan.from_plan(plan).dp_codec == "topk"

    def test_pretrainer_validates_plan_against_loader(self, small_config, loader):
        from repro.training.trainer import Pretrainer

        plan = ParallelPlan.baseline().with_topology(
            pp=2, dp=loader.data_parallel_degree, micro_batches=8
        )
        with pytest.raises(ValueError, match="num_micro_batches"):
            Pretrainer(small_config, loader, plan=plan)
        matching = plan.with_topology(micro_batches=loader.num_micro_batches)
        trainer = Pretrainer(small_config, loader, plan=matching)
        assert trainer.num_stages == 2

    def test_plans_are_hashable_value_objects(self):
        plans = {ParallelPlan.baseline(), ParallelPlan.preset("cb_fe_sc"), ParallelPlan.baseline()}
        assert len(plans) == 2
        assert hash(ParallelPlan.preset("cb")) == hash(ParallelPlan.cb())

    def test_explicit_topology_args_override_the_plan_in_measure(self):
        from repro.experiments.engine_traffic import measure_engine_traffic

        sample = measure_engine_traffic(
            "override", plan=ParallelPlan.baseline(), num_stages=2, num_micro_batches=2
        )
        assert sample.num_stages == 2

    def test_example_plan_files_are_valid(self):
        files = sorted(EXAMPLES_DIR.glob("*.json"))
        assert len(files) >= 4
        for path in files:
            plan = ParallelPlan.load(path)
            assert ParallelPlan.from_dict(plan.to_dict()) == plan


# ---------------------------------------------------------------------------------
# Shim equivalence: legacy EngineCompressionConfig vs the plan path
# ---------------------------------------------------------------------------------


def _run_probe(engine, iterations=2, seed=7):
    """Run a deterministic probe and return (records, weights)."""
    rng = np.random.default_rng(seed)
    model = engine.model_config
    for _ in range(iterations):
        batches = [
            [
                (
                    rng.integers(0, model.vocab_size, size=(2, 8)),
                    rng.integers(0, model.vocab_size, size=(2, 8)),
                )
                for _ in range(2)
            ]
            for _ in range(engine.data_parallel_degree)
        ]
        engine.zero_grad()
        engine.run_iteration(batches)
        for arena in engine.arenas:
            arena.data[...] -= 1e-3 * arena.grad
    records = [
        (r.category, r.payload_bytes, r.wire_bytes, r.compressed, r.overlapped)
        for r in engine.log.records
    ]
    weights = [p.data.copy() for p in engine.parameters()]
    return records, weights


ENGINE_SPELLINGS = [
    EngineCompressionConfig.uncompressed(),
    EngineCompressionConfig.uncompressed().with_(dp_overlap=False),
    EngineCompressionConfig(dp_codec="powersgd", dp_rank=2, dp_stage_fraction=0.5),
    EngineCompressionConfig(dp_codec="qsgd", dp_qsgd_bits=3, min_compression_elements=64),
    EngineCompressionConfig(
        dp_codec="topk", dp_topk_fraction=0.25, dp_overlap=False, dp_error_feedback=False
    ),
    EngineCompressionConfig(dp_codec="powersgd", dp_rank=2, dp_bucket_bytes=1 << 12),
]


class TestDpFireKnob:
    """The micro-batch-granular bucket-firing schedule knob."""

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            Schedule(dp_fire="per_layer")
        with pytest.raises(ValueError):
            EngineCompressionConfig(dp_fire="per_layer")

    def test_round_trips_and_diffs(self):
        plan = ParallelPlan(schedule=Schedule(dp_fire="micro_batch"))
        assert ParallelPlan.from_json(plan.to_json()) == plan
        delta = ParallelPlan().diff(plan)
        assert delta == {"schedule.dp_fire": ("stage", "micro_batch")}

    def test_describe_marks_micro_batch_fire(self):
        stage = ParallelPlan()
        micro = stage.with_schedule(dp_fire="micro_batch")
        assert "mb-fire" not in stage.describe()
        assert "mb-fire" in micro.describe()
        # The serial schedule has no buckets to fire: no marker.
        serial = micro.with_schedule(kind="serial")
        assert "mb-fire" not in serial.describe()

    def test_engine_config_carries_dp_fire_both_ways(self):
        plan = ParallelPlan(schedule=Schedule(dp_fire="micro_batch"))
        config = plan.engine_config()
        assert config.dp_fire == "micro_batch"
        assert "mb-fire" in config.describe()
        lifted = config.as_plan()
        assert lifted.schedule.dp_fire == "micro_batch"
        assert EngineCompressionConfig.from_plan(lifted) == config

    def test_training_job_gets_dp_fire(self):
        from repro.models.gpt_configs import GPT_2_5B

        micro = ParallelPlan(schedule=Schedule(dp_fire="micro_batch"))
        assert micro.training_job(GPT_2_5B).dp_fire == "micro_batch"
        # A serial schedule has no overlapped buckets — the simulator keeps the
        # stage-granular window.
        serial = micro.with_schedule(kind="serial")
        assert serial.training_job(GPT_2_5B).dp_fire == "stage"

    def test_presets_default_to_stage_fire(self):
        for name in PLAN_PRESETS:
            assert ParallelPlan.preset(name).schedule.dp_fire == "stage"

    def test_engine_threads_dp_fire_to_bucketed_sync(self):
        config = functional_config(
            vocab_size=32, sequence_length=8, num_layers=2, hidden_size=8, num_heads=2
        )
        engine = ThreeDParallelEngine(
            config,
            plan=ParallelPlan(
                topology=Topology(dp=2, pp=2), schedule=Schedule(dp_fire="micro_batch")
            ),
        )
        assert engine.bucketed_sync is not None
        assert engine.bucketed_sync.dp_fire == "micro_batch"


class TestZb1Schedule:
    """The zero-bubble schedule as a plan value."""

    def test_round_trips_and_diffs(self):
        plan = ParallelPlan.zb1()
        assert ParallelPlan.from_json(plan.to_json()) == plan
        delta = ParallelPlan.baseline().diff(plan)
        assert delta == {"schedule.kind": ("1f1b", "zb1")}

    def test_preset_and_describe(self):
        plan = ParallelPlan.preset("zb1")
        assert plan.schedule.kind == "zb1"
        assert plan.schedule.dp_overlap  # zb1 overlaps the DP all-reduce
        assert "zb1" in plan.describe()

    def test_rejects_interleaving(self):
        with pytest.raises(ValueError, match="num_model_chunks"):
            Schedule(kind="zb1", num_model_chunks=2)

    def test_training_job_gets_the_schedule_kind(self):
        from repro.models.gpt_configs import GPT_2_5B

        job = ParallelPlan.zb1().training_job(GPT_2_5B)
        assert job.schedule_kind == "zb1"
        assert job.num_model_chunks == 1
        # zb1's native firing granularity is micro-batch (the engine forces it
        # too) — the simulator must model the same behaviour even though the
        # plan's dp_fire field says "stage".
        assert job.dp_fire == "micro_batch"
        # Non-zb1 plans keep the fused-backward pipeline shape and their own
        # firing granularity.
        base_job = ParallelPlan.baseline().training_job(GPT_2_5B)
        assert base_job.schedule_kind == "1f1b"
        assert base_job.dp_fire == "stage"

    def test_engine_threads_the_schedule_kind(self):
        config = functional_config(
            vocab_size=32, sequence_length=8, num_layers=2, hidden_size=8, num_heads=2
        )
        engine = ThreeDParallelEngine(config, plan=ParallelPlan.zb1().with_topology(pp=2, dp=2))
        assert engine.schedule_kind == "zb1"
        assert all(e.schedule_kind == "zb1" for e in engine.pipeline_engines)
        assert engine.bucketed_sync is not None
        assert engine.bucketed_sync.schedule_kind == "zb1"

    def test_zb1_dp_overlap_derives_overlapped_engine_config(self):
        config = ParallelPlan.zb1().engine_config()
        assert config.dp_overlap


class TestShimEquivalence:
    @pytest.mark.parametrize(
        "engine_config", ENGINE_SPELLINGS, ids=lambda cfg: cfg.describe()
    )
    def test_every_legacy_spelling_matches_its_plan(self, engine_config):
        """The shim contract: cfg and cfg.as_plan() drive identical engines."""
        model = functional_config(
            vocab_size=48, sequence_length=12, num_layers=2, hidden_size=16, num_heads=2
        )
        plan = engine_config.as_plan(num_stages=2, data_parallel_degree=2)
        assert EngineCompressionConfig.from_plan(plan) == engine_config

        legacy = ThreeDParallelEngine(
            model, num_stages=2, data_parallel_degree=2, engine_config=engine_config
        )
        via_plan = ThreeDParallelEngine(model, plan=plan)
        legacy_records, legacy_weights = _run_probe(legacy)
        plan_records, plan_weights = _run_probe(via_plan)

        assert legacy_records == plan_records  # identical traffic log, record by record
        for mine, theirs in zip(legacy_weights, plan_weights):
            assert np.array_equal(mine, theirs)  # bit-identical weights

    def test_preset_cli_and_shim_spellings_are_bit_identical(self):
        """The acceptance triangle: --preset path == plan path == legacy shim."""
        arguments = cli.build_parser().parse_args(["train", "--preset", "cb_fe_sc"])
        cli_plan = cli.build_train_plan(arguments)
        plan = ParallelPlan.preset("cb_fe_sc").proxy_scaled()
        assert cli_plan == plan

        model = functional_config(
            vocab_size=48, sequence_length=12, num_layers=4, hidden_size=16, num_heads=2
        )
        engines = [
            ThreeDParallelEngine(model, plan=plan),
            ThreeDParallelEngine(model, plan=cli_plan),
            ThreeDParallelEngine(
                model,
                num_stages=4,
                data_parallel_degree=2,
                optimus_config=plan.optimus_config(),
                engine_config=plan.engine_config(),  # the legacy shim spelling
            ),
        ]
        results = [_run_probe(engine) for engine in engines]
        reference_records, reference_weights = results[0]
        dp_records = [r for r in reference_records if r[0] == "data_parallel"]
        assert dp_records and any(r[3] for r in dp_records)  # DP compression exercised
        for records, weights in results[1:]:
            assert records == reference_records
            for mine, theirs in zip(reference_weights, weights):
                assert np.array_equal(mine, theirs)


# ---------------------------------------------------------------------------------
# Cross-layer parity: the simulator and the engine read the same plan
# ---------------------------------------------------------------------------------


class TestCrossLayerParity:
    @pytest.mark.parametrize("name", sorted(PLAN_PRESETS))
    def test_simulator_and_engine_agree_on_every_boundary(self, name):
        plan = ParallelPlan.preset(name)
        sim = CompressionPlan.from_plan(plan)
        eng = plan.engine_config()
        optimus = plan.optimus_config()

        # DP boundary: codec, rank, bits, kept fraction, and the stage set.
        if plan.spec(Boundary.DP).compresses:
            assert sim.dp_codec == eng.dp_codec
            assert sim.dp_rank == eng.dp_rank
            assert sim.dp_qsgd_bits == eng.dp_qsgd_bits
            assert sim.dp_topk_fraction == eng.dp_topk_fraction
            assert sim.dp_compressed_stage_fraction == eng.dp_stage_fraction
        for num_stages in (2, 4, 8):
            engine_stages = (
                select_compressed_stages(num_stages, eng.dp_stage_fraction)
                if eng.compresses_dp
                else set()
            )
            assert sim.compressed_dp_stages(num_stages) == engine_stages

        # PP boundary: CB flag, rank, epilogue restriction, LEP.
        assert sim.compress_backward == plan.spec(Boundary.PP).compresses
        assert sim.backward_rank == optimus.cb_rank
        assert sim.backward_epilogue_only == optimus.epilogue_only

        # Embedding boundary.
        assert sim.fuse_embedding == (plan.spec(Boundary.EMBEDDING).codec == "fused")

    @pytest.mark.parametrize("rank", [2, 4, 64])
    def test_powersgd_byte_models_agree(self, rank):
        """Engine codec payloads and the cost model count the same elements."""
        from repro.models.gpt_configs import GPT_2_5B

        job = TrainingJob(model=GPT_2_5B)
        cost = CostModel(job)
        compressor = PowerSGDCompressor(rank=rank, min_compression_elements=0)
        rng = np.random.default_rng(0)
        for rows, cols in cost.stage_weight_matrices(0)[:4]:
            # Simulator's element count for one matrix under powersgd.
            effective = max(1, min(rank, rows, cols))
            sim_elements = min(effective * (rows + cols), rows * cols)
            payload = compressor.compress(rng.standard_normal((rows, cols)), key="m")
            engine_elements = payload.payload_bytes / UNCOMPRESSED_BYTES_PER_ELEMENT
            assert engine_elements == sim_elements

    def test_engine_measured_savings_follow_the_shared_plan(self):
        """End to end: the engine's measured DP savings match the plan's intent."""
        from repro.experiments.engine_traffic import measure_engine_traffic

        plan = ParallelPlan.preset("cb_fe_sc").proxy_scaled()
        sample = measure_engine_traffic("parity", plan=plan)
        assert sample.dp_bytes_saved_fraction > 0.0
        sim = CompressionPlan.from_plan(plan)
        # 75% of 4 stages -> stages {0, 1, 2} on both layers.
        assert sim.compressed_dp_stages(plan.topology.pp) == {0, 1, 2}


# ---------------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------------


class TestPlanCli:
    def test_plan_show_preset(self, capsys):
        assert cli.main(["plan", "show", "cb_fe_sc"]) == 0
        out = capsys.readouterr().out
        assert "CB+FE+SC" in out and '"topology"' in out

    def test_plan_show_rejects_unknown(self):
        with pytest.raises(SystemExit):
            cli.main(["plan", "show", "not_a_preset_or_file"])

    def test_plan_validate_examples(self, capsys):
        files = [str(path) for path in sorted(EXAMPLES_DIR.glob("*.json"))]
        assert cli.main(["plan", "validate", *files]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == len(files)

    def test_plan_validate_checks_the_json_round_trip(self, tmp_path, capsys):
        """CI's glob step must reject files that load but do not round-trip."""
        # A plan whose JSON carries an unknown *valid-looking* section passes
        # from_dict validation only if it round-trips; simulate drift by
        # monkey-free construction: a file that parses but normalises away a
        # field would differ after to_json.  All shipped examples round-trip.
        good = tmp_path / "good.json"
        ParallelPlan.zb1().save(good)
        assert cli.main(["plan", "validate", str(good)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_train_schedule_flag_selects_zb1(self, capsys):
        assert (
            cli.main(
                ["train", "--preset", "baseline", "--schedule", "zb1", "--iterations", "1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "zb1" in out

    def test_train_preset_zb1(self, capsys):
        assert cli.main(["train", "--preset", "zb1", "--iterations", "1"]) == 0
        assert "zb1" in capsys.readouterr().out

    def test_schedule_flag_conflicts_rejected(self):
        with pytest.raises(SystemExit, match="--schedule"):
            cli.main(
                ["train", "--preset", "baseline", "--schedule", "zb1", "--serial-dp",
                 "--iterations", "1"]
            )

    def test_plan_validate_fails_on_invalid_file(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        ParallelPlan.baseline().save(good)
        bad = tmp_path / "bad.json"
        bad.write_text('{"compression": {"dp": {"codec": "zip"}}}')
        with pytest.raises(SystemExit, match="1 invalid"):
            cli.main(["plan", "validate", str(good), str(bad)])
        out = capsys.readouterr().out
        assert "OK" in out and "FAIL" in out

    def test_plan_diff(self, capsys):
        assert cli.main(["plan", "diff", "cb_fe", "cb_fe_sc"]) == 0
        out = capsys.readouterr().out
        assert "compression.dp.codec" in out
        assert cli.main(["plan", "diff", "cb", "cb"]) == 0
        assert "identical" in capsys.readouterr().out

    def test_train_accepts_plan_file(self, tmp_path, capsys):
        path = tmp_path / "probe.json"
        ParallelPlan.baseline().with_topology(pp=2).save(path)
        assert cli.main(["train", "--plan", str(path), "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "PP2 x DP2 x TP1" in out

    def test_train_preset_and_plan_are_mutually_exclusive(self, tmp_path):
        path = tmp_path / "probe.json"
        ParallelPlan.baseline().save(path)
        with pytest.raises(SystemExit, match="mutually exclusive"):
            cli.main(["train", "--plan", str(path), "--preset", "baseline"])
        with pytest.raises(SystemExit, match="--config cannot be combined"):
            cli.main(["train", "--preset", "baseline", "--config", "cb"])

    def test_train_rejects_bad_topology_cleanly(self):
        with pytest.raises(SystemExit, match="pp must be positive"):
            cli.main(["train", "--stages", "0"])

    def test_plan_file_rank_is_taken_verbatim(self, tmp_path):
        """Restating a --plan file's own codec must not proxy-cap its rank."""
        path = tmp_path / "r8.json"
        ParallelPlan.cb_fe_sc(dp_rank=8).save(path)
        arguments = cli.build_parser().parse_args(
            ["train", "--plan", str(path), "--dp-codec", "powersgd"]
        )
        assert cli.build_train_plan(arguments).spec(Boundary.DP).rank == 8
        preset_args = cli.build_parser().parse_args(
            ["train", "--preset", "naive_dp", "--dp-codec", "powersgd"]
        )
        assert cli.build_train_plan(preset_args).spec(Boundary.DP).rank == 2

    def test_engine_folds_overrides_into_its_stored_plan(self):
        model = functional_config(
            vocab_size=48, sequence_length=12, num_layers=2, hidden_size=16, num_heads=2
        )
        engine = ThreeDParallelEngine(
            model, num_stages=2, plan=ParallelPlan.baseline().with_topology(pp=4)
        )
        assert engine.num_stages == 2
        assert engine.plan.topology.pp == 2  # self.plan describes the actual run

    def test_overlap_dp_flag_flips_a_serial_plan_back(self, tmp_path):
        path = tmp_path / "serial.json"
        ParallelPlan.baseline().with_schedule(kind="serial").save(path)
        arguments = cli.build_parser().parse_args(
            ["train", "--plan", str(path), "--overlap-dp"]
        )
        assert cli.build_train_plan(arguments).schedule.dp_overlap
        with pytest.raises(SystemExit, match="mutually exclusive"):
            cli.main(["train", "--serial-dp", "--overlap-dp"])

    def test_train_flags_layer_onto_the_plan(self):
        arguments = cli.build_parser().parse_args(
            [
                "train",
                "--preset",
                "baseline",
                "--dp-codec",
                "qsgd",
                "--dp-qsgd-bits",
                "2",
                "--serial-dp",
                "--stages",
                "3",
                "--dp-bucket-kb",
                "16",
            ]
        )
        plan = cli.build_train_plan(arguments)
        dp = plan.spec(Boundary.DP)
        assert dp.codec == "qsgd" and dp.bits == 2
        assert dp.bucket_bytes == 16 * 1024
        assert plan.schedule.kind == "serial"
        assert plan.topology.pp == 3

    def test_bucket_default_derives_from_the_dataclass(self):
        """--dp-bucket-kb omitted -> the plan keeps the dataclass default."""
        arguments = cli.build_parser().parse_args(["train", "--preset", "baseline"])
        plan = cli.build_train_plan(arguments)
        assert (
            plan.engine_config().dp_bucket_bytes
            == EngineCompressionConfig.dp_bucket_bytes
        )


class TestExecutorKnob:
    """The plan's execution-backend selector (``repro.exec`` integration)."""

    def test_round_trip_and_describe(self):
        plan = ParallelPlan.preset("cb_fe_sc").with_executor("process")
        assert plan.executor == "process"
        assert ParallelPlan.from_dict(plan.to_dict()) == plan
        assert plan.describe().endswith("proc-exec")
        assert "proc-exec" not in plan.with_executor("serial").describe()

    def test_serial_is_omitted_from_json(self):
        """Byte-stability: existing plan files never gain an executor key."""
        payload = ParallelPlan.preset("baseline").to_dict()
        assert "executor" not in payload
        assert ParallelPlan.from_dict(payload).executor == "serial"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown executor kind"):
            ParallelPlan.baseline().with_executor("threads")
        with pytest.raises(ValueError, match="unknown executor kind"):
            ParallelPlan.from_dict({"executor": "threads"})
        with pytest.raises(ValueError, match="executor must be a string"):
            ParallelPlan.from_dict({"executor": 2})

    def test_cli_flag_layers_onto_any_plan(self):
        arguments = cli.build_parser().parse_args(
            ["train", "--preset", "baseline", "--executor", "process"]
        )
        assert cli.build_train_plan(arguments).executor == "process"
        arguments = cli.build_parser().parse_args(["train", "--preset", "baseline"])
        assert cli.build_train_plan(arguments).executor == "serial"

    def test_train_executor_process_smoke(self, capsys):
        """Fast-tier CI smoke: the full CLI path over the process executor."""
        assert (
            cli.main(
                ["train", "--preset", "cb_fe_sc", "--stages", "2", "--executor",
                 "process", "--iterations", "1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "proc-exec" in out and "final training loss" in out
