"""Tests for repro.tensor.functional: forward values and backward correctness.

Backward implementations are verified against central-difference numerical
gradients, since the whole functional fidelity layer rests on them.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import functional as F

from tests.conftest import numerical_gradient


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        logits = rng.normal(size=(4, 7))
        probs = F.softmax(logits)
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_shift_invariance(self, rng):
        logits = rng.normal(size=(3, 5))
        assert np.allclose(F.softmax(logits), F.softmax(logits + 1000.0))

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = rng.normal(size=(3, 5))
        assert np.allclose(F.log_softmax(logits), np.log(F.softmax(logits)), atol=1e-12)

    def test_softmax_backward_matches_numerical(self, rng):
        logits = rng.normal(size=(2, 6))
        weights = rng.normal(size=(2, 6))  # arbitrary downstream projection

        def scalar_loss():
            return float(np.sum(F.softmax(logits) * weights))

        numerical = numerical_gradient(scalar_loss, logits)
        analytic = F.softmax_backward(weights, F.softmax(logits))
        assert np.allclose(analytic, numerical, atol=1e-6)

    def test_extreme_logits_do_not_overflow(self):
        logits = np.array([[1e4, -1e4, 0.0]])
        probs = F.softmax(logits)
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)


class TestGelu:
    def test_zero_maps_to_zero(self):
        assert F.gelu(np.zeros(3)) == pytest.approx(0.0)

    def test_large_positive_is_identity_like(self):
        x = np.array([10.0])
        assert F.gelu(x)[0] == pytest.approx(10.0, rel=1e-3)

    def test_backward_matches_numerical(self, rng):
        x = rng.normal(size=(5, 3))
        weights = rng.normal(size=(5, 3))

        def scalar_loss():
            return float(np.sum(F.gelu(x) * weights))

        numerical = numerical_gradient(scalar_loss, x)
        analytic = F.gelu_backward(weights, x)
        assert np.allclose(analytic, numerical, atol=1e-6)


class TestLayerNorm:
    def test_output_is_normalised(self, rng):
        x = rng.normal(size=(4, 8)) * 3 + 1
        gamma = np.ones(8)
        beta = np.zeros(8)
        out, _ = F.layer_norm_forward(x, gamma, beta)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_backward_matches_numerical(self, rng):
        x = rng.normal(size=(3, 6))
        gamma = rng.normal(size=6)
        beta = rng.normal(size=6)
        weights = rng.normal(size=(3, 6))

        def scalar_loss():
            out, _ = F.layer_norm_forward(x, gamma, beta)
            return float(np.sum(out * weights))

        out, cache = F.layer_norm_forward(x, gamma, beta)
        grad_x, grad_gamma, grad_beta = F.layer_norm_backward(weights, cache)
        assert np.allclose(grad_x, numerical_gradient(scalar_loss, x), atol=1e-5)
        assert np.allclose(grad_gamma, numerical_gradient(scalar_loss, gamma), atol=1e-5)
        assert np.allclose(grad_beta, numerical_gradient(scalar_loss, beta), atol=1e-5)


class TestDropout:
    def test_disabled_in_eval_mode(self, rng):
        x = rng.normal(size=(4, 4))
        out, mask = F.dropout_forward(x, 0.5, rng, training=False)
        assert mask is None
        assert np.array_equal(out, x)

    def test_zero_rate_is_identity(self, rng):
        x = rng.normal(size=(4, 4))
        out, mask = F.dropout_forward(x, 0.0, rng, training=True)
        assert mask is None
        assert np.array_equal(out, x)

    def test_invalid_rate_raises(self, rng):
        with pytest.raises(ValueError):
            F.dropout_forward(np.ones(3), 1.5, rng)

    def test_expected_scale_preserved(self, rng):
        x = np.ones((200, 200))
        out, _ = F.dropout_forward(x, 0.3, rng, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_applies_mask(self, rng):
        x = np.ones((8, 8))
        out, mask = F.dropout_forward(x, 0.5, rng, training=True)
        grad = F.dropout_backward(np.ones_like(x), mask)
        assert np.array_equal(grad, mask)


class TestCrossEntropy:
    def test_uniform_logits_give_log_vocab(self):
        logits = np.zeros((2, 3, 8))
        targets = np.zeros((2, 3), dtype=np.int64)
        loss, _ = F.cross_entropy_forward(logits, targets)
        assert loss == pytest.approx(np.log(8))

    def test_perfect_prediction_gives_small_loss(self):
        logits = np.full((1, 2, 4), -100.0)
        targets = np.array([[1, 3]])
        logits[0, 0, 1] = 100.0
        logits[0, 1, 3] = 100.0
        loss, _ = F.cross_entropy_forward(logits, targets)
        assert loss < 1e-6

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.cross_entropy_forward(np.zeros((2, 3, 4)), np.zeros((2, 4), dtype=np.int64))

    def test_backward_matches_numerical(self, rng):
        logits = rng.normal(size=(2, 3, 5))
        targets = rng.integers(0, 5, size=(2, 3))

        def scalar_loss():
            loss, _ = F.cross_entropy_forward(logits, targets)
            return loss

        _, probabilities = F.cross_entropy_forward(logits, targets)
        analytic = F.cross_entropy_backward(probabilities, targets)
        assert np.allclose(analytic, numerical_gradient(scalar_loss, logits), atol=1e-6)


class TestMasks:
    def test_causal_mask_is_lower_triangular(self):
        mask = F.causal_mask(4)
        assert mask[2, 1] and mask[2, 2]
        assert not mask[1, 2]

    def test_masked_fill_replaces_disallowed(self):
        scores = np.ones((3, 3))
        filled = F.masked_fill(scores, F.causal_mask(3))
        assert filled[0, 2] == -1e9
        assert filled[2, 0] == 1.0


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=2, max_value=9))
    def test_softmax_always_a_distribution(self, rows, cols):
        rng = np.random.default_rng(rows * 100 + cols)
        logits = rng.normal(size=(rows, cols)) * 10
        probs = F.softmax(logits)
        assert np.all(probs >= 0)
        assert np.allclose(probs.sum(axis=-1), 1.0)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=8))
    def test_layer_norm_gradient_sums_to_zero(self, hidden):
        rng = np.random.default_rng(hidden)
        x = rng.normal(size=(3, hidden))
        out, cache = F.layer_norm_forward(x, np.ones(hidden), np.zeros(hidden))
        grad_x, _, _ = F.layer_norm_backward(np.ones_like(out), cache)
        # LayerNorm output is invariant to a constant input shift, so the gradient
        # must be orthogonal to the all-ones direction.
        assert np.allclose(grad_x.sum(axis=-1), 0.0, atol=1e-8)
