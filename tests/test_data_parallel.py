"""Tests for data-parallel gradient synchronisation and tensor-parallel layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.gpt_stage import build_gpt_stages
from repro.parallel.collectives import CommunicationLog
from repro.parallel.data_parallel import DataParallelGradientSync, is_embedding_parameter
from repro.parallel.pipeline_engine import PipelineParallelEngine
from repro.parallel.tensor_parallel import ColumnParallelLinear, RowParallelLinear
from repro.tensor.parameter import Parameter


def build_replicas(config, num_replicas=2, num_stages=2, seed=0):
    return [build_gpt_stages(config, num_stages, seed=seed) for _ in range(num_replicas)]


def run_replica(stages, tokens, targets):
    PipelineParallelEngine(stages).run_iteration([(tokens, targets)])


class TestIsEmbeddingParameter:
    def test_detects_by_name(self):
        assert is_embedding_parameter(Parameter(np.zeros(2), name="stage0.word_embeddings"))
        assert not is_embedding_parameter(Parameter(np.zeros(2), name="stage0.position_embeddings"))


class TestDataParallelSync:
    def test_average_matches_manual_mean(self, tiny_config, rng):
        replicas = build_replicas(tiny_config)
        batches = []
        for _ in range(2):
            tokens = rng.integers(0, tiny_config.vocab_size, size=(2, 8))
            targets = rng.integers(0, tiny_config.vocab_size, size=(2, 8))
            batches.append((tokens, targets))
        for replica, (tokens, targets) in zip(replicas, batches):
            run_replica(replica, tokens, targets)

        # Snapshot the per-replica gradient of one weight before synchronisation.
        grads_before = [
            replica[0].layers[0].attention.qkv.weight.grad.copy() for replica in replicas
        ]
        expected = np.mean(grads_before, axis=0)

        sync = DataParallelGradientSync(replicas, exclude_embedding=True)
        sync.synchronize()
        for replica in replicas:
            assert np.allclose(replica[0].layers[0].attention.qkv.weight.grad, expected)
        assert sync.max_gradient_divergence() < 1e-12

    def test_single_replica_is_noop(self, tiny_config, rng):
        log = CommunicationLog()
        replicas = build_replicas(tiny_config, num_replicas=1)
        tokens = rng.integers(0, tiny_config.vocab_size, size=(2, 8))
        targets = rng.integers(0, tiny_config.vocab_size, size=(2, 8))
        run_replica(replicas[0], tokens, targets)
        DataParallelGradientSync(replicas, log=log).synchronize()
        assert log.count() == 0

    def test_embedding_excluded_when_requested(self, tiny_config, rng):
        log = CommunicationLog()
        replicas = build_replicas(tiny_config)
        tokens = rng.integers(0, tiny_config.vocab_size, size=(2, 8))
        targets = rng.integers(0, tiny_config.vocab_size, size=(2, 8))
        for replica in replicas:
            run_replica(replica, tokens, targets)
        DataParallelGradientSync(replicas, log=log, exclude_embedding=True).synchronize()
        assert log.count(category="embedding_dp") == 0
        assert log.count(category="data_parallel") > 0

    def test_embedding_included_by_default_category(self, tiny_config, rng):
        log = CommunicationLog()
        replicas = build_replicas(tiny_config)
        tokens = rng.integers(0, tiny_config.vocab_size, size=(2, 8))
        targets = rng.integers(0, tiny_config.vocab_size, size=(2, 8))
        for replica in replicas:
            run_replica(replica, tokens, targets)
        DataParallelGradientSync(replicas, log=log, exclude_embedding=False).synchronize()
        assert log.count(category="embedding_dp") > 0

    def test_mismatched_replicas_raise(self, tiny_config):
        replicas = [build_gpt_stages(tiny_config, 2, seed=0), build_gpt_stages(tiny_config, 1, seed=0)]
        with pytest.raises(ValueError):
            DataParallelGradientSync(replicas)

    def test_compression_hook_is_consulted(self, tiny_config, rng):
        replicas = build_replicas(tiny_config)
        tokens = rng.integers(0, tiny_config.vocab_size, size=(2, 8))
        targets = rng.integers(0, tiny_config.vocab_size, size=(2, 8))
        for replica in replicas:
            run_replica(replica, tokens, targets)

        class RecordingHook:
            def __init__(self):
                self.calls = []

            def should_compress(self, stage_index, parameter):
                return stage_index == 0 and parameter.data.ndim >= 2

            def reduce(self, key, stage_index, gradients, group):
                self.calls.append((key, stage_index))
                reduced = np.mean([np.asarray(g) for g in gradients], axis=0)
                group.all_reduce(list(gradients), op="mean", payload_bytes=1, compressed=True)
                return [reduced for _ in gradients]

        hook = RecordingHook()
        log = CommunicationLog()
        DataParallelGradientSync(
            replicas, log=log, compression_hook=hook, exclude_embedding=True
        ).synchronize()
        assert hook.calls, "hook should have been used for stage 0"
        assert all(stage == 0 for _, stage in hook.calls)
        assert any(record.compressed for record in log.records)


class TestTensorParallelLayers:
    def test_column_parallel_matches_dense(self, rng):
        weight = rng.normal(size=(6, 8))
        x = rng.normal(size=(3, 6))
        layer = ColumnParallelLinear(weight, tensor_parallel_degree=4)
        assert np.allclose(layer.forward(x), x @ weight)

    def test_column_parallel_shard_outputs(self, rng):
        weight = rng.normal(size=(6, 8))
        x = rng.normal(size=(3, 6))
        partials = ColumnParallelLinear(weight, 2).forward(x, gather_output=False)
        assert len(partials) == 2 and partials[0].shape == (3, 4)

    def test_row_parallel_matches_dense(self, rng):
        weight = rng.normal(size=(8, 5))
        x = rng.normal(size=(3, 8))
        layer = RowParallelLinear(weight, tensor_parallel_degree=4)
        assert np.allclose(layer.forward(x), x @ weight)

    def test_column_then_row_matches_two_layer_dense(self, rng):
        """The Megatron layer pattern: column-parallel then row-parallel, one all-reduce."""
        log = CommunicationLog()
        w1 = rng.normal(size=(6, 8))
        w2 = rng.normal(size=(8, 6))
        x = rng.normal(size=(4, 6))
        column = ColumnParallelLinear(w1, 2, log=log)
        row = RowParallelLinear(w2, 2, log=log)
        partials = column.forward(x, gather_output=False)
        output = row.forward(partials)
        assert np.allclose(output, x @ w1 @ w2)
        # Only the row-parallel all-reduce communicates; no all-gather was needed.
        assert log.count(operation="all_reduce") == 1
        assert log.count(operation="all_gather") == 0

    def test_indivisible_split_raises(self, rng):
        with pytest.raises(ValueError):
            ColumnParallelLinear(rng.normal(size=(4, 6)), tensor_parallel_degree=4)
        with pytest.raises(ValueError):
            RowParallelLinear(rng.normal(size=(6, 4)), tensor_parallel_degree=4)
