"""Cross-module integration tests and system-level property tests.

These tests tie several subsystems together (functional engines + compression +
synchronisation, or cost model + executor) and check invariants that must hold for
*any* configuration, complementing the per-module unit tests and the paper-shape
assertions in ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OptimusCC, OptimusCCConfig
from repro.data import LanguageModelingDataLoader, SyntheticCorpus, SyntheticCorpusConfig
from repro.models import GPT_2_5B, GPT_8_3B, functional_config
from repro.parallel.process_groups import ParallelLayout
from repro.simulator import CompressionPlan, PipelineTimingSimulator, TrainingJob
from repro.simulator.cost_model import CostModel
from repro.training.trainer import Pretrainer


# ----------------------------------------------------------------------------------
# Functional end-to-end integration
# ----------------------------------------------------------------------------------


def build_trainer(config: OptimusCCConfig, seed: int = 0, num_stages: int = 4) -> Pretrainer:
    corpus = SyntheticCorpus(SyntheticCorpusConfig(vocab_size=64, seed=21))
    loader = LanguageModelingDataLoader(
        corpus, sequence_length=12, micro_batch_size=2, num_micro_batches=4, data_parallel_degree=2
    )
    model = functional_config(
        vocab_size=64, sequence_length=16, num_layers=4, hidden_size=16, num_heads=2
    )
    return Pretrainer(model, loader, num_stages=num_stages, optimus_config=config,
                      learning_rate=2e-3, seed=seed)


class TestFullStackIntegration:
    @pytest.mark.parametrize(
        "config",
        [
            OptimusCCConfig.baseline(),
            OptimusCCConfig.cb(rank=2),
            OptimusCCConfig.cb_fe(rank=2),
            OptimusCCConfig.cb_fe_sc(cb_rank=2, dp_rank=2),
            OptimusCCConfig.naive_dp(dp_rank=2),
            OptimusCCConfig.optimus_topk(fraction=0.05),
        ],
        ids=lambda config: config.describe(),
    )
    def test_every_configuration_trains_and_stays_consistent(self, config):
        """All technique combinations train, keep replicas identical, and keep the
        tied embedding copies identical after every iteration."""
        trainer = build_trainer(config)
        for _ in range(3):
            loss = trainer.train_iteration()
            assert np.isfinite(loss)
            assert trainer.weights_in_sync()

    def test_compression_reduces_logged_backward_traffic(self):
        baseline = build_trainer(OptimusCCConfig.baseline())
        compressed = build_trainer(OptimusCCConfig.cb(rank=1))
        baseline.train_iteration()
        compressed.train_iteration()
        assert (
            compressed.log.total_wire_bytes("inter_stage_backward")
            < baseline.log.total_wire_bytes("inter_stage_backward")
        )
        # Forward traffic is untouched by CB.
        assert compressed.log.total_wire_bytes("inter_stage_forward") == pytest.approx(
            baseline.log.total_wire_bytes("inter_stage_forward")
        )

    def test_fused_embedding_reduces_embedding_traffic_without_changing_weights(self):
        plain = build_trainer(OptimusCCConfig.baseline(), seed=5)
        fused = build_trainer(OptimusCCConfig.baseline().with_(fuse_embedding=True), seed=5)
        plain.train_iteration()
        fused.train_iteration()
        plain_embedding_bytes = plain.log.total_wire_bytes("embedding_dp") + plain.log.total_wire_bytes(
            "embedding_sync"
        )
        fused_embedding_bytes = fused.log.total_wire_bytes("embedding_sync")
        assert fused_embedding_bytes < plain_embedding_bytes
        # FE is exact: the resulting weights match to float-reordering precision.
        for plain_param, fused_param in zip(plain.engines[0].parameters(), fused.engines[0].parameters()):
            assert np.allclose(plain_param.data, fused_param.data, atol=1e-9)

    def test_selective_compression_only_touches_selected_stages(self):
        trainer = build_trainer(OptimusCCConfig.cb_fe_sc(cb_rank=2, dp_rank=2, stage_fraction=0.5))
        trainer.train_iteration()
        assert trainer.dp_hook is not None
        assert trainer.dp_hook.compressed_stages == {0, 1}
        assert trainer.dp_hook.bytes_saved_fraction() > 0.3


# ----------------------------------------------------------------------------------
# Simulator properties
# ----------------------------------------------------------------------------------


class TestSimulatorProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        pipeline=st.sampled_from([2, 4, 8]),
        chunks=st.sampled_from([1, 2]),
        stage_fraction=st.sampled_from([0.0, 0.5, 1.0]),
        compress_backward=st.booleans(),
        fuse=st.booleans(),
    )
    def test_iteration_time_bounded_below_by_compute(
        self, pipeline, chunks, stage_fraction, compress_backward, fuse
    ):
        """No configuration can finish faster than one stage's serial compute."""
        layout = ParallelLayout(tensor_parallel=8, pipeline_parallel=pipeline, data_parallel=4)
        job = TrainingJob(model=GPT_2_5B, layout=layout, num_model_chunks=chunks)
        plan = CompressionPlan(
            compress_backward=compress_backward,
            dp_compressed_stage_fraction=stage_fraction,
            fuse_embedding=fuse,
        )
        timing = PipelineTimingSimulator(job, plan).run()
        cost = CostModel(job)
        compute_lower_bound = job.num_micro_batches * (cost.forward_time(0) + cost.backward_time(0))
        assert timing.iteration_time >= compute_lower_bound * 0.99
        assert all(np.isfinite(value) for value in timing.stage_finish)

    @settings(max_examples=10, deadline=None)
    @given(rank=st.sampled_from([4, 16, 64, 128]))
    def test_compression_never_increases_wire_bytes(self, rank):
        job = TrainingJob(model=GPT_8_3B)
        baseline = PipelineTimingSimulator(job, CompressionPlan.baseline()).run()
        compressed = PipelineTimingSimulator(
            job, CompressionPlan.cb_fe_sc(cb_rank=rank, dp_rank=rank)
        ).run()
        assert compressed.interstage_wire_bytes <= baseline.interstage_wire_bytes
        assert compressed.dp_wire_bytes <= baseline.dp_wire_bytes
        assert compressed.embedding_wire_bytes <= baseline.embedding_wire_bytes

    @settings(max_examples=10, deadline=None)
    @given(fraction_pair=st.sampled_from([(0.0, 0.25), (0.25, 0.5), (0.5, 0.75), (0.75, 1.0)]))
    def test_more_compressed_stages_never_slower(self, fraction_pair):
        """At a fixed rank, compressing more stages never increases iteration time."""
        lower, higher = fraction_pair
        job = TrainingJob(model=GPT_2_5B)
        time_lower = PipelineTimingSimulator(
            job, CompressionPlan(dp_compressed_stage_fraction=lower, fuse_embedding=True)
        ).run().iteration_time
        time_higher = PipelineTimingSimulator(
            job, CompressionPlan(dp_compressed_stage_fraction=higher, fuse_embedding=True)
        ).run().iteration_time
        assert time_higher <= time_lower + 1e-9

    def test_facade_and_raw_simulator_agree(self):
        job = TrainingJob(model=GPT_2_5B)
        config = OptimusCCConfig.cb_fe_sc()
        via_facade = OptimusCC(config).simulate_iteration(job).iteration_time
        via_simulator = PipelineTimingSimulator(job, config.to_compression_plan()).run().iteration_time
        assert via_facade == pytest.approx(via_simulator)

    def test_faster_interconnect_faster_iteration(self):
        from repro.parallel.topology import ClusterTopology
        from repro.simulator.hardware import ClusterSpec

        slow = ClusterSpec(topology=ClusterTopology(inter_node_bandwidth_gbps=25.0))
        fast = ClusterSpec(topology=ClusterTopology(inter_node_bandwidth_gbps=400.0))
        slow_time = PipelineTimingSimulator(TrainingJob(model=GPT_8_3B, cluster=slow)).run().iteration_time
        fast_time = PipelineTimingSimulator(TrainingJob(model=GPT_8_3B, cluster=fast)).run().iteration_time
        assert fast_time < slow_time
