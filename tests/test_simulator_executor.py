"""Tests for the event-driven timing simulator, breakdown, memory, and throughput models."""

from __future__ import annotations

import pytest

from repro.models import GPT_2_5B, GPT_8_3B, GPT_175B
from repro.parallel.process_groups import ParallelLayout
from repro.simulator import (
    CompressionPlan,
    CompressionThroughputModel,
    MemoryModel,
    PipelineTimingSimulator,
    TrainingJob,
    compute_breakdown,
    measured_numpy_throughput,
)
from repro.simulator.executor import ComponentToggles, simulate_plan


@pytest.fixture(scope="module")
def job() -> TrainingJob:
    return TrainingJob(model=GPT_2_5B)


@pytest.fixture(scope="module")
def baseline(job):
    return PipelineTimingSimulator(job, CompressionPlan.baseline()).run()


class TestCompressionPlan:
    def test_named_constructors(self):
        assert CompressionPlan.baseline().describe() == "Baseline"
        assert CompressionPlan.cb().describe() == "CB"
        assert CompressionPlan.cb_fe().describe() == "CB+FE"
        assert "SC" in CompressionPlan.cb_fe_sc().describe()
        assert "DP(all)" in CompressionPlan.naive_dp().describe()
        assert "naive" in CompressionPlan.naive_cb().describe()

    def test_compressed_stage_selection(self):
        assert CompressionPlan.cb_fe_sc(stage_fraction=0.75).compressed_dp_stages(4) == {0, 1, 2}
        assert CompressionPlan.naive_dp().compressed_dp_stages(4) == {0, 1, 2, 3}
        assert CompressionPlan.baseline().compressed_dp_stages(4) == set()

    def test_invalid_plan_raises(self):
        with pytest.raises(ValueError):
            CompressionPlan(dp_compressed_stage_fraction=1.5)
        with pytest.raises(ValueError):
            CompressionPlan(backward_rank=0)


class TestPlanCodecs:
    """The plan carries a DP codec with the engine's vocabulary."""

    def test_codec_vocabulary_is_shared_with_the_engine(self):
        from repro.core.config import ENGINE_DP_CODECS
        from repro.simulator.executor import DP_CODECS

        assert DP_CODECS == ENGINE_DP_CODECS

    def test_from_engine_config_round_trips_the_dp_block(self):
        from repro.core.config import EngineCompressionConfig

        engine_config = EngineCompressionConfig(
            dp_codec="qsgd", dp_qsgd_bits=6, dp_stage_fraction=0.5
        )
        plan = CompressionPlan.from_engine_config(engine_config, fuse_embedding=True)
        assert plan.dp_codec == "qsgd"
        assert plan.dp_qsgd_bits == 6
        assert plan.dp_compressed_stage_fraction == 0.5
        assert plan.fuse_embedding
        # A "none" codec maps to no compressed stages at all.
        none_plan = CompressionPlan.from_engine_config(
            EngineCompressionConfig.uncompressed()
        )
        assert none_plan.compressed_dp_stages(4) == set()

    def test_invalid_codec_fields_raise(self):
        with pytest.raises(ValueError):
            CompressionPlan(dp_codec="zip")
        with pytest.raises(ValueError):
            CompressionPlan(dp_qsgd_bits=0)
        with pytest.raises(ValueError):
            CompressionPlan(dp_topk_fraction=0.0)

    @pytest.mark.parametrize("codec", ["powersgd", "qsgd", "topk"])
    def test_every_codec_reduces_dp_wire_bytes(self, job, baseline, codec):
        plan = CompressionPlan(
            dp_compressed_stage_fraction=1.0,
            dp_codec=codec,
            dp_rank=4,
            dp_qsgd_bits=4,
            dp_topk_fraction=0.01,
        )
        timing = PipelineTimingSimulator(job, plan).run()
        assert timing.dp_wire_bytes < baseline.dp_wire_bytes

    def test_codec_shows_in_description(self):
        plan = CompressionPlan(dp_compressed_stage_fraction=1.0, dp_codec="topk")
        assert "topk" in plan.describe()


class TestDpOverlapAccounting:
    """Exposed/overlapped split of the DP all-reduce across the cool-down."""

    def test_split_partitions_the_dp_wire_bytes(self, baseline):
        total = baseline.dp_exposed_wire_bytes + baseline.dp_overlapped_wire_bytes
        assert total == pytest.approx(baseline.dp_wire_bytes)
        assert 0.0 < baseline.dp_overlapped_fraction < 1.0

    def test_stage_zero_is_always_exposed(self, baseline):
        # Stage 0 drains last: its all-reduce can never hide, so some bytes stay
        # exposed even though late stages overlap theirs.
        assert baseline.dp_exposed_wire_bytes > 0

    def test_deeper_pipelines_hide_more(self):
        shallow_job = TrainingJob(
            model=GPT_2_5B, layout=ParallelLayout(pipeline_parallel=2)
        )
        deep_job = TrainingJob(
            model=GPT_2_5B, layout=ParallelLayout(pipeline_parallel=8)
        )
        shallow = PipelineTimingSimulator(shallow_job).run()
        deep = PipelineTimingSimulator(deep_job).run()
        assert deep.dp_overlapped_fraction > shallow.dp_overlapped_fraction

    def test_micro_batch_fire_widens_the_overlap_window(self):
        """dp_fire='micro_batch' opens each stage's window one backward op
        earlier, so strictly more DP bytes hide — total bytes unchanged."""
        stage_job = TrainingJob(
            model=GPT_2_5B, layout=ParallelLayout(pipeline_parallel=4), dp_fire="stage"
        )
        micro_job = TrainingJob(
            model=GPT_2_5B,
            layout=ParallelLayout(pipeline_parallel=4),
            dp_fire="micro_batch",
        )
        stage = PipelineTimingSimulator(stage_job).run()
        micro = PipelineTimingSimulator(micro_job).run()
        assert micro.dp_wire_bytes == pytest.approx(stage.dp_wire_bytes)
        assert micro.dp_overlapped_fraction > stage.dp_overlapped_fraction
        assert micro.iteration_time == pytest.approx(stage.iteration_time)

    def test_invalid_dp_fire_rejected(self):
        with pytest.raises(ValueError):
            TrainingJob(model=GPT_2_5B, dp_fire="per_layer")


class TestTimingSimulator:
    def test_iteration_time_positive_and_consistent(self, job, baseline):
        assert baseline.iteration_time > 0
        assert baseline.days_for(230_000) == pytest.approx(
            baseline.iteration_time * 230_000 / 86400
        )
        assert len(baseline.stage_finish) == job.num_stages

    def test_deterministic(self, job, baseline):
        again = PipelineTimingSimulator(job, CompressionPlan.baseline()).run()
        assert again.iteration_time == pytest.approx(baseline.iteration_time)

    def test_every_technique_speeds_up_the_baseline(self, job, baseline):
        for plan in (
            CompressionPlan.cb(),
            CompressionPlan.cb_fe(),
            CompressionPlan.cb_fe_sc(),
        ):
            timing = PipelineTimingSimulator(job, plan).run()
            assert timing.iteration_time < baseline.iteration_time

    def test_paper_ordering_cb_lt_cbfe_lt_cbfesc(self, job, baseline):
        """Table 2 ordering: each added technique increases the speedup."""
        cb = simulate_plan(job, CompressionPlan.cb()).speedup_over(baseline)
        cb_fe = simulate_plan(job, CompressionPlan.cb_fe()).speedup_over(baseline)
        full = simulate_plan(job, CompressionPlan.cb_fe_sc()).speedup_over(baseline)
        assert 0 < cb < cb_fe < full

    def test_compression_reduces_wire_bytes(self, job, baseline):
        compressed = simulate_plan(job, CompressionPlan.cb_fe_sc())
        assert compressed.interstage_wire_bytes < baseline.interstage_wire_bytes
        assert compressed.dp_wire_bytes < baseline.dp_wire_bytes
        assert compressed.embedding_wire_bytes < baseline.embedding_wire_bytes

    def test_compression_overhead_reported(self, job):
        assert simulate_plan(job, CompressionPlan.cb_fe_sc()).compression_overhead > 0
        assert simulate_plan(job, CompressionPlan.baseline()).compression_overhead == 0

    def test_naive_cb_compresses_more_transfers_than_epilogue_only(self, job):
        naive = simulate_plan(job, CompressionPlan.naive_cb())
        epilogue = simulate_plan(job, CompressionPlan.cb())
        assert naive.interstage_wire_bytes < epilogue.interstage_wire_bytes

    def test_plain_1f1b_schedule_supported(self):
        job = TrainingJob(model=GPT_2_5B, num_model_chunks=1)
        timing = PipelineTimingSimulator(job).run()
        assert timing.iteration_time > 0

    def test_single_stage_pipeline(self):
        layout = ParallelLayout(tensor_parallel=8, pipeline_parallel=1, data_parallel=4)
        job = TrainingJob(model=GPT_2_5B, layout=layout, num_model_chunks=1)
        timing = PipelineTimingSimulator(job).run()
        assert timing.iteration_time > 0
        assert timing.interstage_wire_bytes == 0

    def test_toggles_remove_component_costs(self, job, baseline):
        no_dp = PipelineTimingSimulator(job, toggles=ComponentToggles(data_parallel=0.0)).run()
        assert no_dp.iteration_time < baseline.iteration_time
        no_comm = PipelineTimingSimulator(
            job,
            toggles=ComponentToggles(interstage=0.0, data_parallel=0.0, embedding=0.0),
        ).run()
        assert no_comm.iteration_time < no_dp.iteration_time

    def test_bigger_model_takes_longer(self):
        small = PipelineTimingSimulator(TrainingJob(model=GPT_2_5B)).run()
        large = PipelineTimingSimulator(TrainingJob(model=GPT_8_3B)).run()
        assert large.iteration_time > small.iteration_time

    def test_speedup_over_convention(self, baseline):
        assert baseline.speedup_over(baseline) == pytest.approx(0.0)


class TestConfigurationSensitivity:
    """Fig. 14 trends: CB gains grow with pipeline depth, SC gains shrink."""

    @staticmethod
    def _speedup(layout, plan, reference_plan=CompressionPlan.baseline()):
        from repro.models import GPT_9_2B

        job = TrainingJob(model=GPT_9_2B, layout=layout)
        reference = PipelineTimingSimulator(job, reference_plan).run()
        timing = PipelineTimingSimulator(job, plan).run()
        return reference.iteration_time / timing.iteration_time - 1

    def test_cb_benefit_grows_with_pipeline_depth(self):
        shallow = ParallelLayout(tensor_parallel=8, pipeline_parallel=4, data_parallel=4)
        deep = ParallelLayout(tensor_parallel=2, pipeline_parallel=16, data_parallel=4)
        assert self._speedup(deep, CompressionPlan.cb()) > self._speedup(shallow, CompressionPlan.cb())

    def test_all_configurations_see_speedup(self):
        for tp, pp in ((8, 4), (4, 8), (2, 16)):
            layout = ParallelLayout(tensor_parallel=tp, pipeline_parallel=pp, data_parallel=4)
            assert self._speedup(layout, CompressionPlan.cb_fe_sc()) > 0


class TestBreakdown:
    def test_components_are_nonnegative_and_reasonable(self, job):
        breakdown = compute_breakdown(job)
        values = breakdown.as_dict()
        assert all(value >= 0 for value in values.values())
        assert breakdown.total > 0
        assert 0 < breakdown.communication_fraction() < 1

    def test_optimus_reduces_communication_components(self, job):
        base = compute_breakdown(job, CompressionPlan.baseline())
        optimus = compute_breakdown(job, CompressionPlan.cb_fe_sc())
        base_comm = base.interstage_comm + base.data_parallel_comm + base.embedding_comm
        optimus_comm = (
            optimus.interstage_comm + optimus.data_parallel_comm + optimus.embedding_comm
        )
        assert optimus_comm < base_comm
        assert optimus.total < base.total

    def test_fe_reduces_embedding_component(self, job):
        base = compute_breakdown(job, CompressionPlan.baseline())
        fe = compute_breakdown(job, CompressionPlan.cb_fe())
        assert fe.embedding_comm < base.embedding_comm


class TestMemoryModel:
    def test_baseline_report_components(self, job):
        report = MemoryModel(job, CompressionPlan.baseline()).peak_report()
        assert report.parameters_and_optimizer > 0
        assert report.activations > 0
        assert report.compression_buffers == 0
        assert report.lazy_error_buffers == 0
        assert report.total_gb > 1

    def test_compression_adds_buffers(self, job):
        baseline = MemoryModel(job, CompressionPlan.baseline()).peak_report()
        compressed = MemoryModel(job, CompressionPlan.cb_fe_sc()).peak_report()
        assert compressed.total > baseline.total
        overhead = compressed.overhead_over(baseline)
        assert 0 < overhead < 0.25  # paper Fig. 12: ~5-10 % for the low-rank buffers

    def test_lazy_error_adds_small_overhead(self, job):
        model = MemoryModel(job, CompressionPlan.cb())
        with_lep = model.peak_report(lazy_error_propagation=True)
        without_lep = model.peak_report(lazy_error_propagation=False)
        extra = with_lep.overhead_over(without_lep)
        assert 0 <= extra < 0.05  # paper Fig. 12: ~1 %

    def test_first_stage_holds_most_activations(self, job):
        model = MemoryModel(job)
        first = model.stage_report(0)
        last = model.stage_report(job.num_stages - 1)
        assert first.activations > last.activations


class TestThroughputModel:
    def test_throughput_above_interconnect(self):
        model = CompressionThroughputModel(TrainingJob(model=GPT_8_3B))
        point = model.sweep([16])[0]
        assert point.compress_gbps > model.interconnect_gbps()
        assert point.decompress_gbps > point.compress_gbps

    def test_throughput_decreases_with_rank(self):
        """Paper Fig. 15: higher rank -> slower compression (orthogonalisation cost)."""
        model = CompressionThroughputModel(TrainingJob(model=GPT_8_3B))
        points = {p.rank: p.compress_gbps for p in model.sweep([4, 16, 64, 256])}
        assert points[4] > points[16] > points[64] > points[256]

    def test_larger_model_higher_throughput(self):
        small = CompressionThroughputModel(TrainingJob(model=GPT_8_3B))
        large = CompressionThroughputModel(TrainingJob(model=GPT_175B))
        assert large.compress_throughput_gbps(16) > small.compress_throughput_gbps(16)

    def test_measured_numpy_throughput_runs(self):
        point = measured_numpy_throughput(rows=128, cols=64, rank=4, repeats=1)
        assert point.compress_gbps > 0 and point.decompress_gbps > 0


class TestZeroBubbleTiming:
    """The zb1 schedule through the timing simulator: bubble accounting."""

    @staticmethod
    def _job(pp=4, dp=4, global_batch=512, schedule_kind="1f1b"):
        return TrainingJob(
            model=GPT_8_3B,
            layout=ParallelLayout(tensor_parallel=8, pipeline_parallel=pp, data_parallel=dp),
            global_batch_size=global_batch,
            num_model_chunks=1,
            schedule_kind=schedule_kind,
        )

    @pytest.mark.parametrize(
        "pp,dp,global_batch",
        [(2, 8, 512), (4, 4, 512), (8, 2, 512), (4, 4, 256)],
    )
    def test_zb1_bubble_strictly_below_1f1b(self, pp, dp, global_batch):
        """The acceptance claim: pp >= 2, micro_batches >= pp."""
        base = PipelineTimingSimulator(
            self._job(pp, dp, global_batch), CompressionPlan.baseline()
        ).run()
        zb1 = PipelineTimingSimulator(
            self._job(pp, dp, global_batch, schedule_kind="zb1"), CompressionPlan.baseline()
        ).run()
        assert zb1.schedule_kind == "zb1" and base.schedule_kind == "1f1b"
        assert zb1.bubble_fraction < base.bubble_fraction
        assert zb1.iteration_time < base.iteration_time
        assert zb1.pipeline_time < base.pipeline_time

    def test_zb1_helps_even_when_micro_batches_below_pp(self):
        base = PipelineTimingSimulator(self._job(8, 4, 64), CompressionPlan.baseline()).run()
        zb1 = PipelineTimingSimulator(
            self._job(8, 4, 64, schedule_kind="zb1"), CompressionPlan.baseline()
        ).run()
        assert zb1.bubble_fraction < base.bubble_fraction

    def test_single_stage_has_no_bubble_under_either_schedule(self):
        for kind in ("1f1b", "zb1"):
            job = TrainingJob(
                model=GPT_2_5B,
                layout=ParallelLayout(tensor_parallel=8, pipeline_parallel=1, data_parallel=4),
                num_model_chunks=1,
                schedule_kind=kind,
            )
            timing = PipelineTimingSimulator(job, CompressionPlan.baseline()).run()
            assert timing.bubble_fraction == pytest.approx(0.0, abs=1e-12)

    def test_split_backward_times_sum_to_the_fused_backward(self):
        from repro.simulator import CostModel

        cost = CostModel(self._job())
        for stage in range(4):
            b = cost.backward_input_time(stage)
            w = cost.backward_weight_time(stage)
            assert b > 0 and w > 0
            assert b + w == pytest.approx(cost.backward_time(stage), rel=1e-12)

    def test_zb1_rejects_interleaving(self):
        with pytest.raises(ValueError, match="num_model_chunks"):
            TrainingJob(model=GPT_8_3B, num_model_chunks=2, schedule_kind="zb1")

    def test_unknown_schedule_kind_rejected(self):
        with pytest.raises(ValueError, match="schedule kind"):
            TrainingJob(model=GPT_8_3B, num_model_chunks=1, schedule_kind="gpipe")

    def test_schedule_throughput_report(self):
        from repro.simulator import schedule_throughput

        points = {p.kind: p for p in schedule_throughput(self._job())}
        assert set(points) == {"1f1b", "zb1", "auto"}
        # The default sweep runs auto at the job's cap (1.0): never worse than zb1.
        assert points["auto"].memory_cap_factor == 1.0
        assert points["auto"].bubble_fraction <= points["zb1"].bubble_fraction + 1e-9
        assert points["zb1"].tokens_per_second > points["1f1b"].tokens_per_second
        assert points["zb1"].bubble_fraction < points["1f1b"].bubble_fraction
        assert points["zb1"].speedup_over(points["1f1b"]) > 0.0

    def test_zb1_compression_still_simulated(self):
        """CB/FE/SC compose with the zb1 schedule (epilogue sets from B ops)."""
        base = PipelineTimingSimulator(
            self._job(schedule_kind="zb1"), CompressionPlan.baseline()
        ).run()
        compressed = PipelineTimingSimulator(
            self._job(schedule_kind="zb1"), CompressionPlan.cb_fe_sc()
        ).run()
        assert compressed.iteration_time < base.iteration_time
        assert compressed.interstage_wire_bytes < base.interstage_wire_bytes
