"""Tests for OptimusCCConfig and the OptimusCC facade."""

from __future__ import annotations

import pytest

from repro import OptimusCC, OptimusCCConfig
from repro.core.compressed_backprop import CompressedBackpropagation
from repro.core.fused_embedding import EmbeddingSynchronizer
from repro.core.selective_stage import SelectiveStageCompression
from repro.models import GPT_2_5B
from repro.nn.gpt_stage import build_gpt_stages
from repro.parallel.collectives import CommunicationLog
from repro.simulator import TrainingJob


class TestConfig:
    def test_baseline_has_nothing_enabled(self):
        config = OptimusCCConfig.baseline()
        assert not config.compress_backward
        assert not config.fuse_embedding
        assert config.dp_stage_fraction == 0.0
        assert config.describe() == "Baseline"

    def test_named_configurations_describe_paper_labels(self):
        assert OptimusCCConfig.cb().describe() == "CB"
        assert OptimusCCConfig.cb_fe().describe() == "CB+FE"
        assert OptimusCCConfig.cb_fe_sc().describe() == "CB+FE+SC"
        assert OptimusCCConfig.naive_dp().describe() == "DP(all)"
        assert "Non-LEP" in OptimusCCConfig.cb_non_lep().describe()
        assert "naive" in OptimusCCConfig.naive_cb().describe()
        assert "TopK" in OptimusCCConfig.optimus_topk().describe()

    def test_paper_default_hyperparameters(self):
        config = OptimusCCConfig.cb_fe_sc()
        assert config.cb_rank == 16
        assert config.dp_rank == 128
        assert config.dp_stage_fraction == 0.75

    def test_with_returns_modified_copy(self):
        config = OptimusCCConfig.cb()
        modified = config.with_(cb_rank=32)
        assert modified.cb_rank == 32 and config.cb_rank == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            OptimusCCConfig(cb_compressor="zip")
        with pytest.raises(ValueError):
            OptimusCCConfig(dp_stage_fraction=2.0)
        with pytest.raises(ValueError):
            OptimusCCConfig(cb_rank=-1)
        with pytest.raises(ValueError):
            OptimusCCConfig(topk_fraction=0.0)

    def test_to_compression_plan_mirrors_flags(self):
        plan = OptimusCCConfig.cb_fe_sc(cb_rank=8, dp_rank=64, stage_fraction=0.5).to_compression_plan()
        assert plan.compress_backward and plan.fuse_embedding
        assert plan.backward_rank == 8 and plan.dp_rank == 64
        assert plan.dp_compressed_stage_fraction == 0.5


class TestFacadeFunctionalHooks:
    def test_baseline_produces_no_hooks(self):
        optimus = OptimusCC(OptimusCCConfig.baseline())
        assert optimus.make_backward_hook(4) is None
        assert optimus.make_dp_hook(4) is None
        assert optimus.make_forward_hook(4) is None

    def test_full_config_produces_all_hooks(self):
        optimus = OptimusCC(OptimusCCConfig.cb_fe_sc())
        backward = optimus.make_backward_hook(4)
        dp = optimus.make_dp_hook(4)
        assert isinstance(backward, CompressedBackpropagation)
        assert backward.epilogue_only and backward.lazy_error_propagation
        assert isinstance(dp, SelectiveStageCompression)
        assert dp.compressed_stages == {0, 1, 2}

    def test_non_lep_flag_propagates(self):
        backward = OptimusCC(OptimusCCConfig.cb_non_lep()).make_backward_hook(4)
        assert not backward.lazy_error_propagation

    def test_embedding_synchroniser_respects_fusion_flag(self, tiny_config):
        replicas = [build_gpt_stages(tiny_config, 2, seed=0) for _ in range(2)]
        log = CommunicationLog()
        fused = OptimusCC(OptimusCCConfig.cb_fe()).make_embedding_synchronizer(replicas, log)
        plain = OptimusCC(OptimusCCConfig.baseline()).make_embedding_synchronizer(replicas, log)
        assert isinstance(fused, EmbeddingSynchronizer) and fused.fused
        assert not plain.fused


class TestFacadeSimulation:
    @pytest.fixture(scope="class")
    def job(self) -> TrainingJob:
        return TrainingJob(model=GPT_2_5B)

    def test_simulate_and_speedup(self, job):
        optimus = OptimusCC(OptimusCCConfig.cb_fe_sc())
        timing = optimus.simulate_iteration(job)
        assert timing.iteration_time > 0
        assert optimus.speedup_over_baseline(job) > 0
        assert OptimusCC(OptimusCCConfig.baseline()).speedup_over_baseline(job) == pytest.approx(0.0)

    def test_training_days_projection(self, job):
        optimus = OptimusCC(OptimusCCConfig.baseline())
        days = optimus.training_days(job, 230_000)
        assert days == pytest.approx(optimus.simulate_iteration(job).days_for(230_000))

    def test_breakdown_shrinks_under_compression(self, job):
        base = OptimusCC(OptimusCCConfig.baseline()).breakdown(job)
        optimus = OptimusCC(OptimusCCConfig.cb_fe_sc()).breakdown(job)
        assert optimus.total < base.total

    def test_build_trainer_returns_wired_pretrainer(self, small_config, loader):
        from repro.training.trainer import Pretrainer

        trainer = OptimusCC(OptimusCCConfig.cb(rank=4)).build_trainer(
            small_config, loader, num_stages=2, learning_rate=1e-3
        )
        assert isinstance(trainer, Pretrainer)
        assert trainer.optimus_config.compress_backward
        loss = trainer.train_iteration()
        assert loss > 0
