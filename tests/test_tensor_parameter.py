"""Tests for the Parameter container and initialisers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import init
from repro.tensor.parameter import Parameter


class TestParameter:
    def test_grad_starts_at_zero(self):
        parameter = Parameter(np.ones((2, 3)), name="w")
        assert parameter.shape == (2, 3)
        assert parameter.size == 6
        assert np.all(parameter.grad == 0)

    def test_accumulate_and_zero_grad(self):
        parameter = Parameter(np.zeros((2, 2)))
        parameter.accumulate_grad(np.ones((2, 2)))
        parameter.accumulate_grad(np.ones((2, 2)))
        assert np.all(parameter.grad == 2.0)
        parameter.zero_grad()
        assert np.all(parameter.grad == 0.0)

    def test_accumulate_shape_mismatch_raises(self):
        parameter = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            parameter.accumulate_grad(np.ones((3, 2)))

    def test_copy_and_clone(self):
        a = Parameter(np.arange(4.0).reshape(2, 2), name="a")
        b = Parameter(np.zeros((2, 2)), name="b")
        b.copy_(a)
        assert np.array_equal(a.data, b.data)
        clone = a.clone()
        clone.data += 1
        assert not np.array_equal(clone.data, a.data)

    def test_copy_shape_mismatch_raises(self):
        a = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            a.copy_(Parameter(np.zeros((3, 3))))


class TestInitialisers:
    def test_normal_init_statistics(self):
        rng = np.random.default_rng(0)
        weights = init.normal_init((200, 200), rng, std=0.02)
        assert abs(weights.mean()) < 1e-3
        assert weights.std() == pytest.approx(0.02, rel=0.05)

    def test_scaled_output_init_is_smaller(self):
        rng = np.random.default_rng(0)
        scaled = init.scaled_output_init((200, 200), rng, num_layers=8, std=0.02)
        assert scaled.std() == pytest.approx(0.02 / np.sqrt(16), rel=0.1)

    def test_scaled_output_init_requires_positive_layers(self):
        with pytest.raises(ValueError):
            init.scaled_output_init((2, 2), np.random.default_rng(0), num_layers=0)

    def test_zeros_and_ones(self):
        assert np.all(init.zeros_init((3,)) == 0)
        assert np.all(init.ones_init((3,)) == 1)
