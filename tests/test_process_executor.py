"""Tests for the process-parallel execution core (``repro.exec``).

The contract under test is the one the executor is built on:

* **bit-for-bit parity** — ``--executor process`` produces *identical* final
  weights, losses, and traffic records to the serial oracle, for every plan
  preset and (fuzzed) for every DP codec x EF x schedule x topology combination;
* **lifecycle hygiene** — context-managed shutdown leaves no orphaned worker
  processes and no leaked ``/dev/shm`` segments, and the engine stays fully
  usable on the serial path afterwards;
* **failure surfacing** — a dead worker raises the resilience layer's
  :class:`~repro.resilience.WorkerCrash` with the replica attributed.
"""

from __future__ import annotations

import multiprocessing.shared_memory as shared_memory
import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import LanguageModelingDataLoader, SyntheticCorpus, SyntheticCorpusConfig
from repro.exec import ProcessExecutor, SharedArenaSegment
from repro.models.gpt_configs import functional_config
from repro.optim import FusedAdam
from repro.parallel.arena import ParameterArena
from repro.parallel.engine import ThreeDParallelEngine
from repro.plan import PLAN_PRESETS, Boundary, ParallelPlan
from repro.resilience import WorkerCrash


def probe_plan(preset: str = "baseline", pp: int = 2, dp: int = 2, executor: str = "serial"):
    return (
        ParallelPlan.preset(preset)
        .proxy_scaled()
        .with_topology(pp=pp, dp=dp, micro_batches=2)
        .with_executor(executor)
    )


def probe_engine(plan, seed: int = 0):
    model = functional_config(
        vocab_size=64,
        sequence_length=16,
        num_layers=plan.topology.pp,
        hidden_size=16,
        num_heads=2,
    )
    return ThreeDParallelEngine(model, plan=plan, seed=seed)


def probe_loader(plan):
    corpus = SyntheticCorpus(SyntheticCorpusConfig(vocab_size=64, seed=321))
    return LanguageModelingDataLoader(
        corpus,
        sequence_length=12,
        micro_batch_size=2,
        num_micro_batches=plan.topology.micro_batches,
        data_parallel_degree=plan.topology.dp,
    )


def train_probe(plan, iterations: int = 2, seed: int = 0):
    """Train the tiny probe under ``plan``; returns (losses, weights, records)."""
    engine = probe_engine(plan, seed=seed)
    loader = probe_loader(plan)
    optimizers = [FusedAdam(arena, lr=1e-3) for arena in engine.arenas]
    losses = []
    with engine:
        for iteration in range(iterations):
            for optimizer in optimizers:
                optimizer.zero_grad()
            result = engine.run_iteration(loader.iteration_batches(iteration))
            for optimizer in optimizers:
                optimizer.step()
            losses.append(result.mean_loss)
        weights = [arena.data.copy() for arena in engine.arenas]
        records = [
            (record.operation, record.category, record.wire_bytes, record.compressed)
            for record in engine.log.records
        ]
    return losses, weights, records


class TestSerialProcessParity:
    """`--executor process` is bit-for-bit the serial oracle."""

    @pytest.mark.parametrize("preset", sorted(PLAN_PRESETS))
    def test_every_preset_bit_identical(self, preset):
        serial = train_probe(probe_plan(preset, executor="serial"))
        process = train_probe(probe_plan(preset, executor="process"))
        assert serial[0] == process[0], "losses diverged"
        for serial_weights, process_weights in zip(serial[1], process[1]):
            assert np.array_equal(serial_weights, process_weights)
        assert serial[2] == process[2], "traffic records diverged"

    @settings(max_examples=6, deadline=None)
    @given(
        dp=st.integers(min_value=1, max_value=3),
        pp=st.integers(min_value=1, max_value=3),
        schedule=st.sampled_from(["1f1b", "zb1", "auto"]),
        codec=st.sampled_from(["none", "powersgd", "qsgd", "topk"]),
        error_feedback=st.booleans(),
    )
    def test_fuzzed_layouts_bit_identical(self, dp, pp, schedule, codec, error_feedback):
        """DPxPP layouts x schedule kinds x every DP codec x EF on/off."""
        plan = (
            ParallelPlan.preset("baseline")
            .with_topology(pp=pp, dp=dp, micro_batches=2)
            .with_schedule(kind=schedule)
            .with_boundary(
                Boundary.DP,
                codec=codec,
                error_feedback=error_feedback,
                # The probe's parameters are tiny: force the codec to actually
                # engage instead of falling below the compression floor.
                min_elements=1,
                stage_fraction=1.0,
                **({"rank": 2} if codec == "powersgd" else {}),
            )
        )
        serial = train_probe(plan.with_executor("serial"))
        process = train_probe(plan.with_executor("process"))
        assert serial[0] == process[0]
        for serial_weights, process_weights in zip(serial[1], process[1]):
            assert np.array_equal(serial_weights, process_weights)
        assert serial[2] == process[2]

    def test_mutable_state_round_trip_through_workers(self):
        """mutable_state() reads the workers' live CB residuals, and a rollback
        (load_mutable_state) lands back inside the workers: replaying an
        iteration after a rollback reproduces it bit-for-bit."""
        plan = probe_plan("cb_fe_sc", executor="process")
        engine = probe_engine(plan)
        loader = probe_loader(plan)
        optimizers = [FusedAdam(arena, lr=1e-3) for arena in engine.arenas]

        def step(iteration):
            for optimizer in optimizers:
                optimizer.zero_grad()
            result = engine.run_iteration(loader.iteration_batches(iteration))
            for optimizer in optimizers:
                optimizer.step()
            return result.mean_loss

        with engine:
            step(0)
            snapshot = {
                "arenas": [arena.snapshot() for arena in engine.arenas],
                "optimizers": [optimizer.state_dict() for optimizer in optimizers],
                "engine": engine.mutable_state(),
                "iteration": engine._iteration_index,
            }
            assert any(state is not None for state in snapshot["engine"]["cb_hooks"])
            first = step(1)
            weights_first = [arena.data.copy() for arena in engine.arenas]
            for arena, arena_snapshot in zip(engine.arenas, snapshot["arenas"]):
                arena.restore(arena_snapshot)
            for optimizer, optimizer_state in zip(optimizers, snapshot["optimizers"]):
                optimizer.load_state_dict(optimizer_state)
            engine.load_mutable_state(snapshot["engine"])
            engine._iteration_index = snapshot["iteration"]
            assert step(1) == first
            for arena, expected in zip(engine.arenas, weights_first):
                assert np.array_equal(arena.data, expected)


class TestLifecycle:
    """No orphaned processes, no leaked segments, engine usable after close."""

    def test_close_joins_workers_and_unlinks_segments(self):
        plan = probe_plan("cb_fe_sc", executor="process")
        engine = probe_engine(plan)
        loader = probe_loader(plan)
        engine.run_iteration(loader.iteration_batches(0))
        executor = engine._process_executor
        processes = list(executor._processes)
        names = [segment.name for segment in executor.segments]
        assert executor.num_workers == plan.topology.dp
        engine.close()
        assert all(not process.is_alive() for process in processes)
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        # Idempotent, and the engine keeps working on the serial path.
        engine.close()
        result = engine.run_iteration(loader.iteration_batches(1))
        assert np.isfinite(result.mean_loss)

    def test_close_returns_serial_continuation_bit_identical(self):
        """Close after N process iterations, continue serially: the tail must
        match an all-serial run bit-for-bit (weights AND CB state travel back)."""
        plan = probe_plan("cb_fe_sc", executor="process")
        engine = probe_engine(plan)
        loader = probe_loader(plan)
        optimizers = [FusedAdam(arena, lr=1e-3) for arena in engine.arenas]

        def step(iteration):
            for optimizer in optimizers:
                optimizer.zero_grad()
            result = engine.run_iteration(loader.iteration_batches(iteration))
            for optimizer in optimizers:
                optimizer.step()
            return result.mean_loss

        step(0)
        engine.close()
        engine.executor_kind = "serial"
        tail = [step(1), step(2)]
        reference = train_probe(probe_plan("cb_fe_sc", executor="serial"), iterations=3)
        assert tail == reference[0][1:]
        for arena, expected in zip(engine.arenas, reference[1]):
            assert np.array_equal(arena.data, expected)

    def test_context_manager_cleans_up_on_error(self):
        plan = probe_plan(executor="process")
        engine = probe_engine(plan)
        loader = probe_loader(plan)
        with pytest.raises(RuntimeError, match="boom"):
            with engine:
                engine.run_iteration(loader.iteration_batches(0))
                processes = list(engine._process_executor._processes)
                names = [segment.name for segment in engine._process_executor.segments]
                raise RuntimeError("boom")
        assert all(not process.is_alive() for process in processes)
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_drop_worker_follows_drop_replica(self):
        plan = probe_plan(dp=3, executor="process")
        engine = probe_engine(plan)
        loader = probe_loader(plan)
        with engine:
            engine.run_iteration(loader.iteration_batches(0))
            executor = engine._process_executor
            dropped_process = executor._processes[1]
            dropped_name = executor.segments[1].name
            engine.drop_replica(1)
            assert executor.num_workers == 2
            assert not dropped_process.is_alive()
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=dropped_name)
            batches = loader.iteration_batches(1)
            result = engine.run_iteration([batches[0], batches[2]])
            assert np.isfinite(result.mean_loss)

    def test_worker_death_raises_worker_crash(self):
        plan = probe_plan(executor="process")
        engine = probe_engine(plan)
        loader = probe_loader(plan)
        with engine:
            engine.run_iteration(loader.iteration_batches(0))
            os.kill(engine._process_executor._processes[1].pid, signal.SIGKILL)
            with pytest.raises(WorkerCrash) as exc_info:
                engine.run_iteration(loader.iteration_batches(1))
            assert exc_info.value.replica == 1
            assert exc_info.value.iteration == 1


class TestSharedArenaSegment:
    def test_adopt_preserves_values_and_rebinds_views(self, rng):
        from repro.tensor.parameter import Parameter

        parameters = [Parameter(rng.standard_normal((4, 3))), Parameter(rng.standard_normal(5))]
        arena = ParameterArena(parameters)
        before_data = arena.data.copy()
        arena.grad[...] = rng.standard_normal(arena.num_elements)
        before_grad = arena.grad.copy()
        segment = SharedArenaSegment.adopt(arena)
        try:
            assert np.array_equal(arena.data, before_data)
            assert np.array_equal(arena.grad, before_grad)
            assert arena.data.base is not None  # views into the shared buffer
            # Writes through a parameter view land in the shared segment.
            parameters[0].data[0, 0] = 123.0
            assert segment.data[arena.span(parameters[0])[0]] == 123.0
        finally:
            segment.release(arena)
        assert arena.data[arena.span(parameters[0])[0]] == 123.0

    def test_release_unlinks_and_restores_private_storage(self, rng):
        from repro.tensor.parameter import Parameter

        arena = ParameterArena([Parameter(rng.standard_normal(7))])
        segment = SharedArenaSegment.adopt(arena)
        name = segment.name
        expected = arena.data.copy()
        segment.release(arena)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        assert np.array_equal(arena.data, expected)
        segment.destroy()  # idempotent

    def test_executor_requires_start(self):
        engine = probe_engine(probe_plan(executor="process"))
        executor = ProcessExecutor(engine)
        with pytest.raises(RuntimeError, match="not started"):
            executor.run([[], []], 0)
