"""Tests for repro.utils (random streams, tables, logging)."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.utils import RandomState, Table, format_float, format_percent, get_logger, seeded_rng
from repro.utils.logging import enable_console_logging
from repro.utils.random import CounterRNG, derive_seed, global_rng, set_global_seed


class TestRandomState:
    def test_same_seed_same_stream(self):
        a = RandomState(7).rng.normal(size=8)
        b = RandomState(7).rng.normal(size=8)
        assert np.allclose(a, b)

    def test_different_seed_different_stream(self):
        a = RandomState(7).rng.normal(size=8)
        b = RandomState(8).rng.normal(size=8)
        assert not np.allclose(a, b)

    def test_child_streams_are_deterministic(self):
        state = RandomState(3)
        a = state.child("layer", 0).normal(size=4)
        b = RandomState(3).child("layer", 0).normal(size=4)
        assert np.allclose(a, b)

    def test_child_streams_are_independent(self):
        state = RandomState(3)
        a = state.child("layer", 0).normal(size=4)
        b = state.child("layer", 1).normal(size=4)
        assert not np.allclose(a, b)

    def test_child_state_round_trip(self):
        nested = RandomState(5).child_state("dp", 2)
        again = RandomState(5).child_state("dp", 2)
        assert np.allclose(nested.rng.normal(size=3), again.rng.normal(size=3))

    def test_derive_seed_stable(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
        assert derive_seed(1, "a", 2) != derive_seed(1, "a", 3)


class TestCounterRNG:
    """The cached reseekable generator behind the codec kernels."""

    def test_cached_reseek_matches_fresh_construction(self):
        """Old-vs-new regression: reseeking the one cached Philox generator is
        bit-identical to constructing Generator(Philox(key, counter)) per call."""
        cached = CounterRNG(2024)
        for stream, counter in [(0, 0), (17, 3), (2**63 + 11, 2**40), (17, 4)]:
            new = cached.at(stream, counter).random(257)
            old = CounterRNG.reference_generator(2024, stream, counter).random(257)
            assert np.array_equal(new, old)

    def test_reseek_is_reproducible_after_interleaving(self):
        """Reseeking back to a position replays the stream exactly, no matter
        what was drawn in between — call order cannot leak into a stream."""
        rng = CounterRNG(5)
        first = rng.at(9, 1).random(33)
        rng.at(2, 0).standard_normal(100)
        rng.at(9, 2).random(7)
        again = rng.at(9, 1).random(33)
        assert np.array_equal(first, again)

    def test_streams_and_counters_are_independent(self):
        rng = CounterRNG(5)
        base = rng.at(1, 0).random(64)
        assert not np.array_equal(base, rng.at(2, 0).random(64))
        assert not np.array_equal(base, rng.at(1, 1).random(64))

    def test_float32_draws_match_reference(self):
        rng = CounterRNG(7)
        new = rng.at(3, 2).random(128, dtype=np.float32)
        old = CounterRNG.reference_generator(7, 3, 2).random(128, dtype=np.float32)
        assert np.array_equal(new, old)

    def test_instances_share_nothing(self):
        a, b = CounterRNG(1), CounterRNG(1)
        a.at(0, 0).random(10)
        assert np.array_equal(a.at(4, 0).random(16), b.at(4, 0).random(16))

    def test_pickle_round_trip_preserves_streams(self):
        """Fork/pickle-safety regression: the unpickled copy must keep its
        cached ``Generator`` coupled to its ``Philox`` bit generator.

        Default pickling serialised ``_bit_generator`` and ``_generator`` as
        two *separate* objects, so ``at()``'s in-place counter rewrite stopped
        steering the cached generator and every post-unpickle draw came from
        counter 0.  The process-parallel executor inherits codec RNGs by fork
        (and checkpointing may pickle them), so streams must survive exactly.
        """
        import pickle

        original = CounterRNG(2024)
        original.at(3, 7).random(50)  # disturb the cached generator's position
        clone = pickle.loads(pickle.dumps(original))
        assert clone.seed == original.seed
        for stream, counter in [(0, 0), (3, 7), (2**63 + 11, 2**40)]:
            expected = CounterRNG.reference_generator(2024, stream, counter).random(65)
            assert np.array_equal(clone.at(stream, counter).random(65), expected)
        # The clone's draws must also not perturb the original (no sharing).
        assert np.array_equal(
            original.at(5, 1).random(16),
            CounterRNG.reference_generator(2024, 5, 1).random(16),
        )


class TestGlobalSeed:
    def test_set_global_seed_resets_stream(self):
        set_global_seed(42)
        first = global_rng().normal(size=4)
        set_global_seed(42)
        second = global_rng().normal(size=4)
        assert np.allclose(first, second)

    def test_seeded_rng_uses_explicit_seed(self):
        assert np.allclose(seeded_rng(9).normal(size=4), seeded_rng(9).normal(size=4))


class TestTable:
    def test_render_contains_title_and_rows(self):
        table = Table(title="Table 2", columns=["Model", "Speedup"])
        table.add_row(["GPT-8.3B", "+44.91%"])
        rendered = table.render()
        assert "Table 2" in rendered
        assert "GPT-8.3B" in rendered
        assert "+44.91%" in rendered

    def test_row_length_mismatch_raises(self):
        table = Table(title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(["only-one"])

    def test_alignment_pads_cells(self):
        table = Table(title="t", columns=["a", "b"])
        table.add_row(["xxxxxxxx", "1"])
        table.add_row(["y", "2"])
        lines = table.render().splitlines()
        data_lines = lines[-2:]
        assert len(data_lines[0]) == len(data_lines[1])

    def test_format_float_handles_nan(self):
        assert format_float(float("nan")) == "n/a"
        assert format_float(1.23456, digits=2) == "1.23"

    def test_format_percent(self):
        assert format_percent(0.4491) == "+44.91%"
        assert format_percent(-0.05, signed=True).startswith("-")


class TestLogging:
    def test_get_logger_namespaced(self):
        assert get_logger("simulator").name == "repro.simulator"
        assert get_logger().name == "repro"

    def test_enable_console_logging_idempotent(self):
        logger = enable_console_logging(logging.INFO)
        handlers_before = len(logger.handlers)
        enable_console_logging(logging.INFO)
        assert len(logger.handlers) == handlers_before

    def test_worker_tag_prefixes_records(self):
        """Per-worker attribution: a set tag shows up as ``[tag]`` in the line."""
        from repro.utils.logging import WorkerTagFilter, set_worker_tag, worker_tag

        record = logging.LogRecord("repro.exec", logging.INFO, __file__, 1, "hi", (), None)
        try:
            set_worker_tag("dp3")
            assert worker_tag() == "dp3"
            assert WorkerTagFilter().filter(record) is True
            assert record.worker == "[dp3] "
        finally:
            set_worker_tag("")
        record_untagged = logging.LogRecord(
            "repro.exec", logging.INFO, __file__, 1, "hi", (), None
        )
        WorkerTagFilter().filter(record_untagged)
        assert record_untagged.worker == ""
