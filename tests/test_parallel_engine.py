"""Tests for the unified 3D-parallel execution engine.

Covers the three guarantees the engine makes:

* **gradient parity** — with compression disabled the engine reproduces the
  single-device reference model's gradients (bit-for-bit for one replica, where
  even the floating-point accumulation order is identical);
* **error-feedback convergence** — every DP codec's residual stays bounded and the
  accumulated delivered gradient tracks the accumulated true gradient;
* **traffic accounting** — per-axis and per-boundary wire bytes are exact, for the
  pipeline (PP) boundaries, the data-parallel (DP) boundary, the embedding
  synchronisation, and the tensor-parallel axis.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EngineCompressionConfig, OptimusCCConfig
from repro.nn.transformer import GPTModelConfig
from repro.plan import Boundary, CompressionSpec, ParallelPlan, Schedule, Topology
from repro.nn import CrossEntropyLoss, GPTModel
from repro.parallel.collectives import CommunicationLog, ring_all_reduce_wire_bytes
from repro.parallel.engine import (
    TP_ALL_REDUCES_PER_LAYER_PER_DIRECTION,
    CompressedGradientAllReduce,
    ThreeDParallelEngine,
)
from repro.parallel.pipeline_engine import WIRE_BYTES_PER_ELEMENT


def make_engine(config, optimus=None, engine_config=None, num_stages=2, dp=2, seed=0, **kwargs):
    return ThreeDParallelEngine(
        config,
        num_stages=num_stages,
        data_parallel_degree=dp,
        optimus_config=optimus if optimus is not None else OptimusCCConfig.baseline(),
        engine_config=engine_config,
        seed=seed,
        **kwargs,
    )


def make_batches(config, rng, replicas=2, micro_batches=2, batch=2, seq=8):
    return [
        [
            (
                rng.integers(0, config.vocab_size, size=(batch, seq)),
                rng.integers(0, config.vocab_size, size=(batch, seq)),
            )
            for _ in range(micro_batches)
        ]
        for _ in range(replicas)
    ]


def reference_gradients(config, all_micro_batches, seed):
    """Single-device reference: same data, mean-over-mini-batch loss scaling."""
    model = GPTModel(config, seed=seed)
    loss_fn = CrossEntropyLoss()
    scale = 1.0 / len(all_micro_batches)
    losses = []
    for tokens, targets in all_micro_batches:
        logits, cache = model.forward(tokens)
        loss, loss_cache = loss_fn.forward(logits, targets)
        losses.append(float(loss))
        model.backward(loss_fn.backward(loss_cache) * scale, cache)
    return model, float(np.mean(losses))


def assert_matches_reference(engine, model, atol):
    """Compare replica 0's gradients against the reference, layer by layer."""
    stages = engine.replicas[0]
    for stage in stages:
        for local_index, global_index in enumerate(stage.layer_indices):
            for stage_param, ref_param in zip(
                stage.layers[local_index].parameters(),
                model.layers[global_index].parameters(),
            ):
                if atol == 0.0:
                    assert np.array_equal(stage_param.grad, ref_param.grad), stage_param.name
                else:
                    assert np.allclose(stage_param.grad, ref_param.grad, atol=atol), stage_param.name
    # The synchronised word-embedding copy equals the reference's tied gradient
    # (summation order differs between the tied and split accumulation, so this
    # comparison is never required to be bit-exact).
    embedding = stages[0].embedding_parameters()[0]
    assert np.allclose(embedding.grad, model.token_embedding.weight.grad, atol=max(atol, 1e-13))
    assert np.allclose(
        stages[0].position_embedding.weight.grad,
        model.position_embedding.weight.grad,
        atol=max(atol, 1e-13),
    )


class TestGradientParity:
    @pytest.mark.parametrize("num_stages", [1, 2])
    def test_single_replica_matches_reference_bit_for_bit(self, tiny_config, rng, num_stages):
        """DP=1: the engine's accumulation order equals the reference's, so the
        transformer-layer gradients are bit-for-bit identical."""
        engine = make_engine(tiny_config, num_stages=num_stages, dp=1, seed=11)
        batches = make_batches(tiny_config, rng, replicas=1, micro_batches=2)
        result = engine.run_iteration(batches)
        model, reference_loss = reference_gradients(tiny_config, batches[0], seed=11)
        assert result.mean_loss == pytest.approx(reference_loss, abs=1e-12)
        assert_matches_reference(engine, model, atol=0.0)

    def test_data_parallel_engine_matches_reference(self, tiny_config, rng):
        """DP=2: the mean-over-replicas all-reduce reproduces the reference run
        over all shards (only float summation order differs)."""
        engine = make_engine(tiny_config, num_stages=2, dp=2, seed=3)
        batches = make_batches(tiny_config, rng, replicas=2, micro_batches=2)
        result = engine.run_iteration(batches)
        merged = [mb for replica in batches for mb in replica]
        model, reference_loss = reference_gradients(tiny_config, merged, seed=3)
        assert result.mean_loss == pytest.approx(reference_loss, abs=1e-12)
        assert_matches_reference(engine, model, atol=1e-13)
        # All replicas hold identical gradients after the exact all-reduce.
        assert engine.dp_sync.max_gradient_divergence() == 0.0

    def test_parity_holds_for_every_uncompressed_codec_path(self, tiny_config, rng):
        """The 'none' codec routes through the same all-reduce as the raw sync."""
        engine = make_engine(
            tiny_config,
            engine_config=EngineCompressionConfig.uncompressed(),
            num_stages=2,
            dp=2,
            seed=9,
        )
        batches = make_batches(tiny_config, rng)
        engine.run_iteration(batches)
        model, _ = reference_gradients(tiny_config, [mb for r in batches for mb in r], seed=9)
        assert_matches_reference(engine, model, atol=1e-13)

    def test_tensor_parallel_split_is_verified_and_logged(self, tiny_config, rng):
        engine = make_engine(
            tiny_config,
            engine_config=EngineCompressionConfig.uncompressed(tensor_parallel_degree=2),
            num_stages=2,
            dp=1,
            seed=2,
        )
        batches = make_batches(tiny_config, rng, replicas=1, micro_batches=2)
        result = engine.run_iteration(batches)
        # TP traffic is accounted but never alters the numerics.
        model, _ = reference_gradients(tiny_config, batches[0], seed=2)
        assert_matches_reference(engine, model, atol=0.0)
        assert result.axis_wire_bytes["tensor_parallel"] > 0

    def test_indivisible_tensor_parallel_degree_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            make_engine(
                tiny_config,
                engine_config=EngineCompressionConfig.uncompressed(tensor_parallel_degree=3),
            )


class TestErrorFeedbackConvergence:
    @pytest.mark.parametrize("codec", ["powersgd", "qsgd", "topk"])
    def test_accumulated_delivery_tracks_accumulated_gradient(self, codec, rng):
        """Classic EF guarantee: sum(delivered) = sum(sent) - final residual, so
        the delivery error never accumulates beyond one step's residual."""
        config = EngineCompressionConfig(
            dp_codec=codec,
            dp_rank=2,
            dp_topk_fraction=0.1,
            dp_stage_fraction=1.0,
            min_compression_elements=16,
        )
        reducer = CompressedGradientAllReduce(config, num_stages=1, seed=0)
        log = CommunicationLog()
        from repro.parallel.collectives import SimulatedProcessGroup

        group = SimulatedProcessGroup([0, 1], log, category="data_parallel")
        gradient = rng.normal(size=(16, 8))
        steps = 90
        sent = np.zeros_like(gradient)
        delivered = np.zeros_like(gradient)
        errors = []
        for _ in range(steps):
            contributions = [gradient.copy(), gradient.copy()]
            synced = reducer.reduce("w", 0, contributions, group)
            sent += gradient
            delivered += synced[0]
            errors.append(float(np.linalg.norm(sent - delivered)))
        # The tracking error saturates: the residual stays within a bounded band
        # (a small multiple of one gradient) instead of growing with the step
        # count, and its late plateau is no higher than its mid-run plateau.
        gradient_norm = float(np.linalg.norm(gradient))
        assert max(errors) < 6.0 * gradient_norm
        mid_plateau = float(np.mean(errors[steps // 3 : 2 * steps // 3]))
        late_plateau = float(np.mean(errors[-steps // 3 :]))
        assert late_plateau < 1.3 * mid_plateau + 0.1 * gradient_norm
        # And the mean delivered gradient converges to the true gradient
        # (the residual amortises over the step count).
        mean_delivered = delivered / steps
        assert np.linalg.norm(mean_delivered - gradient) < 0.15 * gradient_norm

    @pytest.mark.parametrize("codec", ["qsgd", "topk"])
    def test_alternative_codecs_train_and_stay_in_sync(self, small_config, loader, codec):
        """QSGD/top-k DP compression trains end-to-end with replicas in lockstep."""
        from repro.training.trainer import Pretrainer

        engine_config = EngineCompressionConfig(
            dp_codec=codec,
            dp_qsgd_bits=6,
            dp_topk_fraction=0.2,
            dp_stage_fraction=1.0,
            min_compression_elements=64,
        )
        trainer = Pretrainer(
            small_config,
            loader,
            num_stages=2,
            engine_config=engine_config,
            learning_rate=2e-3,
            seed=1,
        )
        losses = [trainer.train_iteration() for _ in range(6)]
        assert trainer.weights_in_sync()
        assert min(losses) < losses[0]
        assert trainer.engine.dp_reduce.bytes_saved_fraction() > 0.2

    def test_disabling_error_feedback_drops_residual_state(self, rng):
        config = EngineCompressionConfig(
            dp_codec="topk",
            dp_topk_fraction=0.1,
            dp_error_feedback=False,
            dp_stage_fraction=1.0,
            min_compression_elements=16,
        )
        reducer = CompressedGradientAllReduce(config, num_stages=1, seed=0)
        log = CommunicationLog()
        from repro.parallel.collectives import SimulatedProcessGroup

        group = SimulatedProcessGroup([0, 1], log, category="data_parallel")
        reducer.reduce("w", 0, [rng.normal(size=(16, 8))] * 2, group)
        assert reducer.residual_memory_bytes() == 0


class TestTrafficAccounting:
    def test_pipeline_boundary_traffic_is_per_boundary_exact(self, tiny_config, rng):
        engine = make_engine(tiny_config, num_stages=2, dp=1, seed=0)
        batches = make_batches(tiny_config, rng, replicas=1, micro_batches=3, batch=2, seq=8)
        result = engine.run_iteration(batches)
        # One boundary; 3 backward transfers of (2, 8, hidden) fp16 activations.
        expected = 3 * 2 * 8 * tiny_config.hidden_size * WIRE_BYTES_PER_ELEMENT
        assert result.pipeline_boundary_wire_bytes == {0: float(expected)}
        assert result.axis_wire_bytes["pipeline_backward"] == float(expected)
        assert result.axis_wire_bytes["pipeline_forward"] == float(expected)

    def test_compressed_backprop_shrinks_only_epilogue_boundaries(self, small_config, rng):
        baseline = make_engine(small_config, num_stages=2, dp=1, seed=0)
        compressed = make_engine(
            small_config, optimus=OptimusCCConfig.cb(rank=2), num_stages=2, dp=1, seed=0
        )
        batches = make_batches(small_config, rng, replicas=1, micro_batches=4)
        base = baseline.run_iteration(batches)
        comp = compressed.run_iteration(batches)
        assert (
            comp.axis_wire_bytes["pipeline_backward"]
            < base.axis_wire_bytes["pipeline_backward"]
        )
        # Per-boundary CB statistics come from the hook, keyed by boundary index.
        summary = compressed.pipeline_backward_summary()
        assert set(summary) == {0}
        assert 0 < summary[0]["compressed_transfers"] <= summary[0]["transfers"]
        assert summary[0]["bytes_saved_fraction"] > 0

    def test_dp_traffic_accounted_per_stage_with_selective_compression(
        self, small_config, rng
    ):
        engine = make_engine(
            small_config,
            optimus=OptimusCCConfig.cb_fe_sc(cb_rank=2, dp_rank=2, stage_fraction=0.5),
            num_stages=2,
            dp=2,
            seed=0,
        )
        batches = make_batches(small_config, rng)
        result = engine.run_iteration(batches)
        traffic = result.dp_stage_traffic
        assert set(traffic) == {0, 1}
        # Stage 0 is selected: its large parameters go compressed.
        assert traffic[0].compressed_all_reduces > 0
        assert traffic[0].payload_bytes < traffic[0].original_bytes
        # Stage 1 is not selected: every byte goes uncompressed.
        assert traffic[1].compressed_all_reduces == 0
        assert traffic[1].payload_bytes == traffic[1].original_bytes
        assert engine.dp_reduce.bytes_saved_fraction() > 0

    def test_uncompressed_dp_payload_matches_parameter_sizes(self, tiny_config, rng):
        engine = make_engine(tiny_config, num_stages=2, dp=2, seed=0)
        batches = make_batches(tiny_config, rng)
        result = engine.run_iteration(batches)
        for stage_index in (0, 1):
            stage = engine.replicas[0][stage_index]
            expected = sum(
                parameter.size * WIRE_BYTES_PER_ELEMENT
                for parameter in stage.parameters()
                if parameter.requires_grad and "word_embeddings" not in (parameter.name or "")
            ) * engine.data_parallel_degree
            traffic = result.dp_stage_traffic[stage_index]
            assert traffic.payload_bytes == expected
            assert traffic.original_bytes == expected

    def test_tensor_parallel_traffic_matches_analytic_volume(self, tiny_config, rng):
        tp = 2
        engine = make_engine(
            tiny_config,
            engine_config=EngineCompressionConfig.uncompressed(tensor_parallel_degree=tp),
            num_stages=2,
            dp=2,
            seed=0,
        )
        micro_batches, batch, seq = 2, 2, 8
        batches = make_batches(
            tiny_config, rng, replicas=2, micro_batches=micro_batches, batch=batch, seq=seq
        )
        result = engine.run_iteration(batches)
        payload = batch * seq * tiny_config.hidden_size * WIRE_BYTES_PER_ELEMENT
        transfers = (
            2  # replicas
            * micro_batches
            * 2  # directions
            * tiny_config.num_layers
            * TP_ALL_REDUCES_PER_LAYER_PER_DIRECTION
        )
        expected = transfers * ring_all_reduce_wire_bytes(payload, tp)
        assert result.axis_wire_bytes["tensor_parallel"] == pytest.approx(expected)

    def test_fused_embedding_moves_fewer_bytes_than_baseline(self, small_config, rng):
        batches = make_batches(small_config, rng)
        plain = make_engine(small_config, optimus=OptimusCCConfig.baseline(), seed=0)
        fused = make_engine(small_config, optimus=OptimusCCConfig.cb_fe(rank=2), seed=0)
        plain_result = plain.run_iteration(batches)
        fused_result = fused.run_iteration(batches)
        assert (
            fused_result.axis_wire_bytes["embedding"]
            < plain_result.axis_wire_bytes["embedding"]
        )

    def test_iteration_result_is_a_delta_not_cumulative(self, tiny_config, rng):
        engine = make_engine(tiny_config, num_stages=2, dp=2, seed=0)
        batches = make_batches(tiny_config, rng)
        first = engine.run_iteration(batches)
        engine.zero_grad()
        second = engine.run_iteration(batches)
        for axis, value in first.axis_wire_bytes.items():
            assert second.axis_wire_bytes[axis] == pytest.approx(value)
        # The engine-lifetime summary, by contrast, accumulates.
        assert engine.traffic_summary()["data_parallel"] == pytest.approx(
            2 * first.axis_wire_bytes["data_parallel"]
        )

    def test_replica_count_validated(self, tiny_config, rng):
        engine = make_engine(tiny_config, num_stages=2, dp=2)
        with pytest.raises(ValueError):
            engine.run_iteration(make_batches(tiny_config, rng, replicas=1))


class TestOverlappedDataParallel:
    """The bucketed DP all-reduce overlapped with the pipeline cool-down."""

    @staticmethod
    def _train(engine, batches, iterations=3):
        from repro.optim import FusedAdam

        optimizers = [FusedAdam(arena, lr=2e-3) for arena in engine.arenas]
        results = []
        for _ in range(iterations):
            for optimizer in optimizers:
                optimizer.zero_grad()
            results.append(engine.run_iteration(batches))
            for optimizer in optimizers:
                optimizer.step()
        return results

    def test_overlapped_path_is_weight_parity_with_serial_epilogue(self, small_config, rng):
        """Compression off: the bucketed overlapped path and the serial
        per-parameter epilogue produce bit-for-bit identical weights."""
        batches = make_batches(small_config, rng)
        overlapped = make_engine(
            small_config,
            engine_config=EngineCompressionConfig.uncompressed().with_(
                dp_overlap=True, dp_bucket_bytes=2048
            ),
            seed=5,
        )
        serial = make_engine(
            small_config,
            engine_config=EngineCompressionConfig.uncompressed().with_(dp_overlap=False),
            seed=5,
        )
        self._train(overlapped, batches)
        self._train(serial, batches)
        for over_param, serial_param in zip(overlapped.parameters(), serial.parameters()):
            assert np.array_equal(over_param.data, serial_param.data), over_param.name
            assert np.array_equal(over_param.grad, serial_param.grad), over_param.name

    @pytest.mark.parametrize("codec", ["powersgd", "qsgd", "topk"])
    @pytest.mark.parametrize("error_feedback", [True, False])
    def test_overlapped_path_is_weight_parity_under_every_codec(
        self, small_config, rng, codec, error_feedback
    ):
        """With a codec on, the overlapped path compresses *per bucket* on the
        flat arena views while the serial epilogue compresses per parameter —
        same per-tensor keys, RNG streams, and error-feedback math, so three
        iterations of training end bit-for-bit identical."""
        batches = make_batches(small_config, rng)
        engine_config = EngineCompressionConfig(
            dp_codec=codec,
            dp_rank=2,
            dp_qsgd_bits=4,
            dp_topk_fraction=0.2,
            dp_stage_fraction=1.0,
            dp_error_feedback=error_feedback,
            min_compression_elements=64,
        )
        overlapped = make_engine(
            small_config,
            engine_config=engine_config.with_(dp_overlap=True, dp_bucket_bytes=2048),
            seed=4,
        )
        serial = make_engine(
            small_config, engine_config=engine_config.with_(dp_overlap=False), seed=4
        )
        self._train(overlapped, batches)
        self._train(serial, batches)
        for over_param, serial_param in zip(overlapped.parameters(), serial.parameters()):
            assert np.array_equal(over_param.data, serial_param.data), over_param.name
            assert np.array_equal(over_param.grad, serial_param.grad), over_param.name

    def test_selective_stage_fraction_respected_on_bucketed_path(self, small_config, rng):
        """stage_fraction=0.5 on PP2: stage 0 compressed per bucket, stage 1 exact."""
        batches = make_batches(small_config, rng)
        engine_config = EngineCompressionConfig(
            dp_codec="powersgd",
            dp_rank=2,
            dp_stage_fraction=0.5,
            min_compression_elements=64,
        )
        overlapped = make_engine(
            small_config, engine_config=engine_config.with_(dp_overlap=True), seed=4
        )
        serial = make_engine(
            small_config, engine_config=engine_config.with_(dp_overlap=False), seed=4
        )
        over_result = self._train(overlapped, batches)[-1]
        self._train(serial, batches)
        for over_param, serial_param in zip(overlapped.parameters(), serial.parameters()):
            assert np.array_equal(over_param.data, serial_param.data)
        assert over_result.dp_stage_traffic[0].compressed_all_reduces > 0
        assert over_result.dp_stage_traffic[1].compressed_all_reduces == 0

    @pytest.mark.parametrize("codec", ["none", "powersgd", "qsgd", "topk"])
    def test_micro_batch_fire_changes_only_overlap_accounting(
        self, small_config, rng, codec
    ):
        """dp_fire='micro_batch' must leave weights bit-identical to the stage
        granularity (and to serial); only the overlapped fraction may move."""
        batches = make_batches(small_config, rng)
        engine_config = EngineCompressionConfig(
            dp_codec=codec,
            dp_rank=2,
            dp_qsgd_bits=4,
            dp_topk_fraction=0.2,
            dp_stage_fraction=1.0,
            min_compression_elements=64,
            dp_bucket_bytes=2048,
        )
        stage_fire = make_engine(
            small_config, engine_config=engine_config.with_(dp_fire="stage"), seed=6
        )
        micro_fire = make_engine(
            small_config, engine_config=engine_config.with_(dp_fire="micro_batch"), seed=6
        )
        stage_results = self._train(stage_fire, batches)
        micro_results = self._train(micro_fire, batches)
        for stage_param, micro_param in zip(
            stage_fire.parameters(), micro_fire.parameters()
        ):
            assert np.array_equal(stage_param.data, micro_param.data), stage_param.name
        for stage_result, micro_result in zip(stage_results, micro_results):
            assert micro_result.axis_wire_bytes["data_parallel"] == pytest.approx(
                stage_result.axis_wire_bytes["data_parallel"]
            )
            # Micro-batch firing hides strictly more: everything overlaps except
            # the one bucket that completes when the pipeline drains.
            assert (
                micro_result.dp_overlapped_fraction
                > stage_result.dp_overlapped_fraction
            )
            assert micro_result.dp_exposed_wire_bytes > 0.0

    def test_micro_batch_fire_exposes_exactly_one_bucket(self, small_config, rng):
        batches = make_batches(small_config, rng)
        engine = make_engine(
            small_config,
            engine_config=EngineCompressionConfig.uncompressed().with_(
                dp_fire="micro_batch", dp_bucket_bytes=1024
            ),
            seed=0,
        )
        engine.run_iteration(batches)
        dp_records = [r for r in engine.log.records if r.category == "data_parallel"]
        exposed = [r for r in dp_records if not r.overlapped]
        assert len(exposed) == 1, [r.description for r in exposed]
        assert exposed[0].description.startswith("stage0"), exposed[0].description

    def test_bucket_bytes_sum_to_per_parameter_bytes(self, small_config, rng):
        """Accounting property: per-stage bucketed payload/original bytes equal the
        serial path's per-parameter accounting exactly."""
        batches = make_batches(small_config, rng)
        overlapped = make_engine(
            small_config,
            engine_config=EngineCompressionConfig.uncompressed().with_(
                dp_overlap=True, dp_bucket_bytes=1024
            ),
            seed=0,
        )
        serial = make_engine(
            small_config,
            engine_config=EngineCompressionConfig.uncompressed().with_(dp_overlap=False),
            seed=0,
        )
        over_result = overlapped.run_iteration(batches)
        serial_result = serial.run_iteration(batches)
        assert set(over_result.dp_stage_traffic) == set(serial_result.dp_stage_traffic)
        for stage in over_result.dp_stage_traffic:
            over_traffic = over_result.dp_stage_traffic[stage]
            serial_traffic = serial_result.dp_stage_traffic[stage]
            assert over_traffic.payload_bytes == serial_traffic.payload_bytes
            assert over_traffic.original_bytes == serial_traffic.original_bytes
            # Bucketing coalesces messages: strictly fewer all-reduces, all flat.
            assert over_traffic.bucket_all_reduces > 0
            assert over_traffic.all_reduces < serial_traffic.all_reduces
            assert serial_traffic.bucket_all_reduces == 0
        # The axis totals agree too (same wire bytes, different granularity).
        assert over_result.axis_wire_bytes["data_parallel"] == pytest.approx(
            serial_result.axis_wire_bytes["data_parallel"]
        )

    def test_overlap_accounting_flags_cooldown_traffic(self, small_config, rng):
        """Late stages' buckets are issued inside the cool-down (overlapped);
        stage 0 drains last, so its traffic is exposed."""
        batches = make_batches(small_config, rng)
        engine = make_engine(
            small_config,
            engine_config=EngineCompressionConfig.uncompressed(),
            num_stages=2,
            seed=0,
        )
        result = engine.run_iteration(batches)
        dp_records = [r for r in engine.log.records if r.category == "data_parallel"]
        assert dp_records
        for record in dp_records:
            stage_zero = record.description.startswith("stage0")
            assert record.overlapped == (not stage_zero), record.description
        assert result.dp_overlapped_wire_bytes > 0
        assert result.dp_exposed_wire_bytes > 0
        assert result.dp_exposed_wire_bytes + result.dp_overlapped_wire_bytes == (
            pytest.approx(result.axis_wire_bytes["data_parallel"])
        )
        assert 0.0 < result.dp_overlapped_fraction < 1.0

    def test_serial_epilogue_reports_everything_exposed(self, small_config, rng):
        batches = make_batches(small_config, rng)
        engine = make_engine(
            small_config,
            engine_config=EngineCompressionConfig.uncompressed().with_(dp_overlap=False),
            seed=0,
        )
        result = engine.run_iteration(batches)
        assert result.dp_overlapped_wire_bytes == 0.0
        assert result.dp_exposed_wire_bytes == pytest.approx(
            result.axis_wire_bytes["data_parallel"]
        )

    def test_bucket_size_knob_controls_message_count(self, small_config, rng):
        """Smaller bucket targets produce more (but equally sized in total) messages."""
        batches = make_batches(small_config, rng)

        def dp_message_count(bucket_bytes):
            engine = make_engine(
                small_config,
                engine_config=EngineCompressionConfig.uncompressed().with_(
                    dp_bucket_bytes=bucket_bytes
                ),
                seed=0,
            )
            result = engine.run_iteration(batches)
            messages = sum(t.all_reduces for t in result.dp_stage_traffic.values())
            payload = sum(t.payload_bytes for t in result.dp_stage_traffic.values())
            return messages, payload

        small_messages, small_payload = dp_message_count(512)
        large_messages, large_payload = dp_message_count(1 << 20)
        assert small_messages > large_messages
        assert small_payload == large_payload


class TestZeroBubbleEngine:
    """Schedule.kind="zb1" through the unified 3D engine: weight parity with 1f1b."""

    # Four layers so pipelines up to PP4 are expressible.
    CONFIG = GPTModelConfig(
        vocab_size=32, max_sequence_length=12, num_layers=4, hidden_size=16, num_heads=2
    )

    @staticmethod
    def _build(kind, pp, dp, micro_batches, codec="none", error_feedback=True, seed=4):
        plan = ParallelPlan(
            topology=Topology(dp=dp, pp=pp, tp=1, micro_batches=micro_batches),
            schedule=Schedule(kind=kind),
            compression={
                Boundary.DP: CompressionSpec(
                    codec=codec,
                    rank=2,
                    bits=4,
                    fraction=0.2,
                    stage_fraction=1.0,
                    error_feedback=error_feedback,
                    min_elements=64,
                    bucket_bytes=2048,
                )
            },
        )
        return ThreeDParallelEngine(TestZeroBubbleEngine.CONFIG, plan=plan, seed=seed)

    @classmethod
    def _train(cls, engine, batches, iterations=2):
        from repro.optim import FusedAdam

        optimizers = [FusedAdam(arena, lr=2e-3) for arena in engine.arenas]
        for _ in range(iterations):
            for optimizer in optimizers:
                optimizer.zero_grad()
            engine.run_iteration(batches)
            for optimizer in optimizers:
                optimizer.step()

    @pytest.mark.parametrize("codec", ["none", "powersgd", "qsgd", "topk"])
    def test_zb1_weight_parity_with_1f1b_per_codec(self, rng, codec):
        batches = make_batches(self.CONFIG, rng, replicas=2, micro_batches=4)
        reference = self._build("1f1b", pp=2, dp=2, micro_batches=4, codec=codec)
        zb1 = self._build("zb1", pp=2, dp=2, micro_batches=4, codec=codec)
        self._train(reference, batches, iterations=3)
        self._train(zb1, batches, iterations=3)
        for ref_param, zb1_param in zip(reference.parameters(), zb1.parameters()):
            assert np.array_equal(ref_param.data, zb1_param.data), ref_param.name
            assert np.array_equal(ref_param.grad, zb1_param.grad), ref_param.name

    @settings(max_examples=10, deadline=None)
    @given(
        pp=st.integers(min_value=1, max_value=4),
        dp=st.integers(min_value=1, max_value=3),
        micro_batches=st.integers(min_value=1, max_value=4),
        codec=st.sampled_from(["none", "powersgd", "qsgd", "topk"]),
        error_feedback=st.booleans(),
    )
    def test_zb1_weight_parity_sweep(self, pp, dp, micro_batches, codec, error_feedback):
        """zb1 == 1f1b bit-for-bit across PP x DP layouts and DP codecs.

        Includes micro_batches < pp and the pp == 1 degenerate schedule.
        """
        rng = np.random.default_rng(pp * 100 + dp * 10 + micro_batches)
        batches = make_batches(self.CONFIG, rng, replicas=dp, micro_batches=micro_batches)
        reference = self._build(
            "1f1b", pp, dp, micro_batches, codec=codec, error_feedback=error_feedback
        )
        zb1 = self._build(
            "zb1", pp, dp, micro_batches, codec=codec, error_feedback=error_feedback
        )
        self._train(reference, batches, iterations=2)
        self._train(zb1, batches, iterations=2)
        for ref_param, zb1_param in zip(reference.parameters(), zb1.parameters()):
            assert np.array_equal(ref_param.data, zb1_param.data), ref_param.name

    def test_zb1_matches_the_single_device_reference(self, rng):
        """Transitivity check run directly: zb1 with one replica reproduces the
        single-device reference model's gradients bit-for-bit."""
        batches = make_batches(self.CONFIG, rng, replicas=1, micro_batches=3)
        engine = self._build("zb1", pp=3, dp=1, micro_batches=3)
        result = engine.run_iteration(batches)
        model, ref_loss = reference_gradients(self.CONFIG, batches[0], seed=4)
        assert result.mean_loss == pytest.approx(ref_loss, abs=1e-12)
        assert_matches_reference(engine, model, atol=0.0)

    def test_zb1_with_compressed_backprop_matches_1f1b(self, rng):
        """CB (PP-boundary compression + LEP) sees the same per-boundary
        micro-batch order under both schedules, so weights stay bit-identical."""
        batches = make_batches(self.CONFIG, rng, replicas=2, micro_batches=4)
        engines = {}
        for kind in ("1f1b", "zb1"):
            plan = (
                ParallelPlan.cb_fe_sc(Topology(dp=2, pp=2, tp=1, micro_batches=4))
                .proxy_scaled()
                .with_schedule(kind=kind)
            )
            engine = ThreeDParallelEngine(self.CONFIG, plan=plan, seed=4)
            self._train(engine, batches, iterations=3)
            engines[kind] = engine
        for ref_param, zb1_param in zip(
            engines["1f1b"].parameters(), engines["zb1"].parameters()
        ):
            assert np.array_equal(ref_param.data, zb1_param.data), ref_param.name

    def test_zb1_fires_buckets_at_micro_batch_granularity(self, rng):
        """zb1's W passes finalise gradients per micro-batch, so the engine
        fires every bucket overlapped except stage 0's input-side one — the
        mb-fire pattern — even when the plan says dp_fire="stage"."""
        batches = make_batches(self.CONFIG, rng, replicas=2, micro_batches=4)
        engine = self._build("zb1", pp=2, dp=2, micro_batches=4)
        assert engine.bucketed_sync is not None
        assert engine.bucketed_sync.dp_fire == "stage"  # the plan default
        result = engine.run_iteration(batches)
        records = [
            record
            for record in engine.log.records
            if record.category == "data_parallel"
        ]
        exposed = [record for record in records if not record.overlapped]
        assert len(exposed) == 1
        assert result.dp_exposed_wire_bytes == pytest.approx(exposed[0].wire_bytes)

    def test_1f1b_stage_fire_still_exposes_all_of_stage_zero(self, rng):
        """The zb1 firing rule must not leak into the fused-backward schedule."""
        batches = make_batches(self.CONFIG, rng, replicas=2, micro_batches=4)
        engine = self._build("1f1b", pp=2, dp=2, micro_batches=4)
        engine.run_iteration(batches)
        exposed = [
            record
            for record in engine.log.records
            if record.category == "data_parallel" and not record.overlapped
        ]
        assert len(exposed) > 1  # every stage-0 bucket is exposed under stage fire
