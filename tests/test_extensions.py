"""Tests for the extension features: extra compressors, checkpointing, auto-tuning,
the accelerator discussion experiment, and the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import AdaCompCompressor, QSGDCompressor, relative_error
from repro.core.autotune import SelectiveCompressionAutoTuner
from repro.core.config import OptimusCCConfig
from repro.experiments.discussion_accelerators import run_accelerator_comparison
from repro.models import GPT_2_5B, GPT_8_3B
from repro.simulator import TrainingJob
from repro.simulator.executor import CompressionPlan
from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.training.trainer import Pretrainer
from repro import cli


class TestQSGD:
    def test_roundtrip_error_shrinks_with_bits(self, rng):
        tensor = rng.normal(size=(32, 32))
        errors = []
        for bits in (2, 4, 8):
            approx, _ = QSGDCompressor(bits=bits, deterministic=True).roundtrip(tensor)
            errors.append(relative_error(tensor, approx))
        assert errors[0] > errors[1] > errors[2]

    def test_unbiased_in_expectation(self, rng):
        tensor = rng.normal(size=(16, 16))
        compressor = QSGDCompressor(bits=2, seed=1)
        approximations = [compressor.roundtrip(tensor)[0] for _ in range(400)]
        mean_estimate = np.mean(approximations, axis=0)
        # The element-wise error of the averaged estimate shrinks well below one
        # quantisation step (stochastic rounding is unbiased).
        assert float(np.max(np.abs(mean_estimate - tensor))) < 0.12

    def test_payload_smaller_than_original(self, rng):
        payload = QSGDCompressor(bits=4).compress(rng.normal(size=1024))
        assert payload.payload_bytes < payload.original_bytes

    def test_zero_tensor(self):
        approx, _ = QSGDCompressor(bits=4).roundtrip(np.zeros((4, 4)))
        assert np.all(approx == 0)

    def test_invalid_bits_raise(self):
        with pytest.raises(ValueError):
            QSGDCompressor(bits=0)


class TestAdaComp:
    def test_transmits_large_elements_immediately(self):
        compressor = AdaCompCompressor(sensitivity=0.5, min_elements=0)
        tensor = np.zeros(64)
        tensor[5] = 10.0
        approx, payload = compressor.roundtrip(tensor, key="g")
        assert approx[5] == pytest.approx(10.0)
        assert payload.metadata["kept"] >= 1

    def test_residual_eventually_transmitted(self, rng):
        """Small values accumulate in the residual until they cross the threshold."""
        compressor = AdaCompCompressor(sensitivity=0.9, min_elements=0)
        constant = np.full(32, 0.1)
        total_delivered = np.zeros(32)
        for _ in range(30):
            approx, _ = compressor.roundtrip(constant, key="g")
            total_delivered += approx
        # Delivered + residual equals everything that was pushed in.
        assert np.allclose(total_delivered + compressor.residual("g"), 30 * constant, atol=1e-9)
        assert np.linalg.norm(total_delivered) > 0

    def test_reset_clears_residuals(self, rng):
        compressor = AdaCompCompressor(min_elements=0)
        compressor.compress(rng.normal(size=64), key="g")
        compressor.reset()
        assert compressor.residual("g") is None

    def test_invalid_sensitivity_raises(self):
        with pytest.raises(ValueError):
            AdaCompCompressor(sensitivity=0.0)


class TestCheckpointing:
    def test_save_and_resume_reproduces_training(self, small_config, loader, tmp_path):
        trainer = Pretrainer(small_config, loader, num_stages=2,
                             optimus_config=OptimusCCConfig.baseline(), learning_rate=2e-3, seed=3)
        trainer.train_iteration()
        trainer.train_iteration()
        path = save_checkpoint(trainer, tmp_path / "ckpt.npz")

        # Reference: continue the original trainer.
        reference_loss = trainer.train_iteration()

        # Restore into a freshly constructed trainer and continue from the checkpoint.
        resumed = Pretrainer(small_config, loader, num_stages=2,
                             optimus_config=OptimusCCConfig.baseline(), learning_rate=2e-3, seed=99)
        iteration = load_checkpoint(resumed, path)
        assert iteration == 2
        resumed_loss = resumed.train_iteration()
        assert resumed_loss == pytest.approx(reference_loss, rel=1e-9)

    def test_history_restored(self, small_config, loader, tmp_path):
        trainer = Pretrainer(small_config, loader, num_stages=2, learning_rate=2e-3, seed=3)
        trainer.train(num_iterations=2, validation_interval=1)
        path = save_checkpoint(trainer, tmp_path / "ckpt.npz")
        other = Pretrainer(small_config, loader, num_stages=2, learning_rate=2e-3, seed=4)
        load_checkpoint(other, path)
        assert other.history.train_losses == trainer.history.train_losses
        assert len(other.history.validation_points) == len(trainer.history.validation_points)

    def test_mismatched_trainer_rejected(self, small_config, loader, tmp_path):
        trainer = Pretrainer(small_config, loader, num_stages=2, learning_rate=2e-3, seed=3)
        trainer.train_iteration()
        path = save_checkpoint(trainer, tmp_path / "ckpt.npz")
        mismatched = Pretrainer(small_config, loader, num_stages=1, learning_rate=2e-3, seed=3)
        # Format v2 validates the pipeline/DP topology before touching any
        # weights, so the mismatch fails loudly up front.
        with pytest.raises(ValueError, match="topology"):
            load_checkpoint(mismatched, path)


class TestAutoTuner:
    @pytest.fixture(scope="class")
    def tuner(self) -> SelectiveCompressionAutoTuner:
        return SelectiveCompressionAutoTuner(
            TrainingJob(model=GPT_2_5B),
            stage_fractions=(0.0, 0.5, 1.0),
            dp_ranks=(64, 128),
        )

    def test_budget_zero_disables_compression(self, tuner):
        result = tuner.tune(budget=0.0)
        assert result.best.stage_fraction == 0.0
        assert result.best.dp_bytes_removed_fraction == 0.0

    def test_larger_budget_allows_more_speedup(self, tuner):
        tight = tuner.tune(budget=0.3)
        loose = tuner.tune(budget=1.0)
        assert loose.best.speedup >= tight.best.speedup
        assert tight.best.satisfies(0.3)

    def test_best_plan_reflects_choice(self, tuner):
        result = tuner.tune(budget=1.0)
        plan = result.best_plan()
        assert plan.dp_compressed_stage_fraction == result.best.stage_fraction
        assert plan.dp_rank == result.best.dp_rank
        assert "auto-tuning" in result.render().lower()

    def test_quality_evaluator_breaks_ties(self, tuner):
        # A quality evaluator that prefers the least aggressive plan.
        def evaluator(plan: CompressionPlan) -> float:
            return plan.dp_compressed_stage_fraction

        result = tuner.tune(budget=1.0, quality_evaluator=evaluator, shortlist_size=3)
        shortlist_fractions = [c.stage_fraction for c in result.candidates if c.quality_score is not None]
        assert result.best.stage_fraction == min(shortlist_fractions)

    def test_invalid_budget_raises(self, tuner):
        with pytest.raises(ValueError):
            tuner.tune(budget=1.5)


class TestAcceleratorDiscussion:
    def test_higher_compute_to_bandwidth_ratio_gives_more_speedup(self):
        result = run_accelerator_comparison(model=GPT_8_3B)
        speedups = result.speedups_ordered_by_ratio()
        assert len(speedups) == 3
        # The platform with the highest compute/bandwidth ratio (IPU-like) benefits
        # the most; the GPU baseline the least (Section 10.1's claim).
        assert speedups[-1] > speedups[0]
        assert "Section 10.1" in result.render()


class TestCLI:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        output = capsys.readouterr().out
        assert "GPT-8.3B" in output and "cb_fe_sc" in output and "table2" in output

    def test_simulate_single_config(self, capsys):
        assert cli.main(["simulate", "--model", "GPT-2.5B", "--config", "cb_fe_sc"]) == 0
        output = capsys.readouterr().out
        assert "GPT-2.5B" in output and "cb_fe_sc" in output

    def test_breakdown(self, capsys):
        assert cli.main(["breakdown", "--model", "GPT-2.5B", "--config", "baseline"]) == 0
        output = capsys.readouterr().out
        assert "DP Comm." in output and "Total" in output

    def test_autotune(self, capsys):
        assert cli.main(["autotune", "--model", "GPT-2.5B", "--budget", "0.5"]) == 0
        output = capsys.readouterr().out
        assert "Best operating point" in output

    def test_reproduce_simulator_artefact(self, capsys):
        assert cli.main(["reproduce", "fig12"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 12" in output

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["simulate", "--model", "GPT-1T", "--config", "cb"])

    def test_unknown_artefact_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["reproduce", "fig99"])
