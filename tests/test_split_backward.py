"""Split (B/W) backward parity: backward_input + backward_weight == backward.

The zero-bubble schedule relies on every nn layer exposing an
activation-gradient pass (``backward_input``) and a deferred weight-gradient
pass (``backward_weight``) whose composition is *bit-for-bit* the fused
``backward`` — same kernels, same accumulation values, only the accumulation
moment moves.  These tests build two identically-seeded modules, run one fused
and one split, and require exact equality of input gradients and every
parameter gradient.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.embedding import Embedding
from repro.nn.gpt_stage import build_gpt_stages
from repro.nn.layernorm import LayerNorm
from repro.nn.linear import Linear
from repro.nn.mlp import TransformerMLP
from repro.nn.transformer import GPTModelConfig, TransformerLayer


def assert_parameter_grads_equal(fused, split):
    for fused_param, split_param in zip(fused.parameters(), split.parameters()):
        assert np.array_equal(fused_param.grad, split_param.grad), fused_param.name


def paired(builder):
    """Two bit-identical module instances (independent RNG streams per call)."""
    return builder(np.random.default_rng(0)), builder(np.random.default_rng(0))


class TestLayerParity:
    def test_linear(self):
        fused, split = paired(lambda rng: Linear(8, 12, rng))
        x = np.random.default_rng(1).standard_normal((3, 5, 8))
        grad = np.random.default_rng(2).standard_normal((3, 5, 12))
        out_fused, cache_fused = fused.forward(x)
        out_split, cache_split = split.forward(x)
        assert np.array_equal(out_fused, out_split)
        gi_fused = fused.backward(grad, cache_fused)
        gi_split = split.backward_input(grad, cache_split)
        split.backward_weight(cache_split)
        assert np.array_equal(gi_fused, gi_split)
        assert_parameter_grads_equal(fused, split)

    def test_backward_weight_requires_backward_input(self):
        linear = Linear(4, 4, np.random.default_rng(0))
        _, cache = linear.forward(np.zeros((2, 4)))
        with pytest.raises(RuntimeError, match="backward_input"):
            linear.backward_weight(cache)

    def test_layernorm(self):
        fused, split = paired(lambda rng: LayerNorm(16))
        x = np.random.default_rng(1).standard_normal((2, 4, 16))
        grad = np.random.default_rng(2).standard_normal((2, 4, 16))
        _, cache_fused = fused.forward(x)
        _, cache_split = split.forward(x)
        gi_fused = fused.backward(grad, cache_fused)
        gi_split = split.backward_input(grad, cache_split)
        split.backward_weight(cache_split)
        assert np.array_equal(gi_fused, gi_split)
        assert_parameter_grads_equal(fused, split)

    def test_layernorm_weight_requires_input_pass(self):
        layer_norm = LayerNorm(8)
        _, cache = layer_norm.forward(np.zeros((2, 8)))
        with pytest.raises(RuntimeError, match="backward_input"):
            layer_norm.backward_weight(cache)

    def test_embedding_lookup(self):
        fused, split = paired(lambda rng: Embedding(32, 8, rng))
        indices = np.random.default_rng(1).integers(0, 32, size=(2, 6))
        grad = np.random.default_rng(2).standard_normal((2, 6, 8))
        _, cache_fused = fused.forward(indices)
        _, cache_split = split.forward(indices)
        fused.backward(grad, cache_fused)
        split.backward_input(grad, cache_split)
        split.backward_weight(cache_split)
        assert_parameter_grads_equal(fused, split)

    def test_tied_projection(self):
        fused, split = paired(lambda rng: Embedding(32, 8, rng))
        hidden = np.random.default_rng(1).standard_normal((2, 6, 8))
        grad_logits = np.random.default_rng(2).standard_normal((2, 6, 32))
        gi_fused = fused.project_to_vocab_backward(grad_logits, hidden)
        gi_split = split.project_to_vocab_backward_input(grad_logits, hidden)
        split.project_to_vocab_backward_weight(grad_logits, hidden)
        assert np.array_equal(gi_fused, gi_split)
        assert_parameter_grads_equal(fused, split)

    def test_attention(self):
        fused, split = paired(lambda rng: MultiHeadSelfAttention(16, 2, rng))
        x = np.random.default_rng(1).standard_normal((2, 5, 16))
        grad = np.random.default_rng(2).standard_normal((2, 5, 16))
        _, cache_fused = fused.forward(x)
        _, cache_split = split.forward(x)
        gi_fused = fused.backward(grad, cache_fused)
        gi_split = split.backward_input(grad, cache_split)
        split.backward_weight(cache_split)
        assert np.array_equal(gi_fused, gi_split)
        assert_parameter_grads_equal(fused, split)

    def test_mlp(self):
        fused, split = paired(lambda rng: TransformerMLP(16, rng))
        x = np.random.default_rng(1).standard_normal((2, 5, 16))
        grad = np.random.default_rng(2).standard_normal((2, 5, 16))
        _, cache_fused = fused.forward(x)
        _, cache_split = split.forward(x)
        gi_fused = fused.backward(grad, cache_fused)
        gi_split = split.backward_input(grad, cache_split)
        split.backward_weight(cache_split)
        assert np.array_equal(gi_fused, gi_split)
        assert_parameter_grads_equal(fused, split)

    def test_transformer_layer(self):
        fused, split = paired(lambda rng: TransformerLayer(16, 2, rng))
        x = np.random.default_rng(1).standard_normal((2, 5, 16))
        grad = np.random.default_rng(2).standard_normal((2, 5, 16))
        _, cache_fused = fused.forward(x)
        _, cache_split = split.forward(x)
        gi_fused = fused.backward(grad, cache_fused)
        gi_split = split.backward_input(grad, cache_split)
        split.backward_weight(cache_split)
        assert np.array_equal(gi_fused, gi_split)
        assert_parameter_grads_equal(fused, split)


class TestStageParity:
    CONFIG = GPTModelConfig(
        vocab_size=32, max_sequence_length=12, num_layers=3, hidden_size=16, num_heads=2
    )

    @pytest.mark.parametrize("num_stages", [1, 2, 3])
    def test_stage_split_matches_fused(self, num_stages):
        rng = np.random.default_rng(1)
        tokens = rng.integers(0, 32, size=(2, 8))
        targets = rng.integers(0, 32, size=(2, 8))
        fused_stages = build_gpt_stages(self.CONFIG, num_stages, seed=0)
        split_stages = build_gpt_stages(self.CONFIG, num_stages, seed=0)

        def run(stages, split):
            activation = tokens
            caches = []
            for stage in stages:
                if stage.is_last:
                    _, cache = stage.forward(activation, targets=targets)
                else:
                    activation, cache = stage.forward(activation)
                caches.append(cache)
            grad = None
            pending = []
            for stage, cache in zip(reversed(stages), reversed(caches)):
                upstream = None if stage.is_last else grad
                if split:
                    grad = stage.backward_input(upstream, cache, loss_scale=0.5)
                    pending.append((stage, cache))
                else:
                    grad = stage.backward(upstream, cache, loss_scale=0.5)
            for stage, cache in pending:
                stage.backward_weight(cache)

        run(fused_stages, split=False)
        run(split_stages, split=True)
        for fused_stage, split_stage in zip(fused_stages, split_stages):
            assert_parameter_grads_equal(fused_stage, split_stage)

    def test_stage_weight_pass_requires_input_pass(self):
        (stage,) = build_gpt_stages(self.CONFIG, 1, seed=0)
        rng = np.random.default_rng(1)
        _, cache = stage.forward(
            rng.integers(0, 32, size=(2, 8)), targets=rng.integers(0, 32, size=(2, 8))
        )
        with pytest.raises(RuntimeError, match="backward_input"):
            stage.backward_weight(cache)


class TestBPassReleasesActivations:
    """The zero-bubble memory claim: after B, only the W stash stays alive."""

    def test_attention_cache_slimmed_after_backward_input(self):
        attention = MultiHeadSelfAttention(16, 2, np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((2, 5, 16))
        _, cache = attention.forward(x)
        attention.backward_input(np.random.default_rng(2).standard_normal((2, 5, 16)), cache)
        assert cache.queries is None and cache.keys is None and cache.values is None
        assert cache.attention_probs is None and cache.context is None
        # The W stash survives: both Linear caches keep input + grad_output.
        assert cache.qkv_cache.grad_output is not None
        assert cache.proj_cache.grad_output is not None
        attention.backward_weight(cache)  # still runs to completion

    def test_mlp_and_layernorm_caches_slimmed_after_backward_input(self):
        mlp = TransformerMLP(16, np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((2, 5, 16))
        _, cache = mlp.forward(x)
        mlp.backward_input(np.random.default_rng(2).standard_normal((2, 5, 16)), cache)
        assert cache.pre_gelu is None
        mlp.backward_weight(cache)

        layer_norm = LayerNorm(16)
        _, ln_cache = layer_norm.forward(x)
        layer_norm.backward_input(
            np.random.default_rng(3).standard_normal((2, 5, 16)), ln_cache
        )
        # Only the two parameter-gradient vectors remain.
        assert set(ln_cache) == {"grad_gamma", "grad_beta"}
        layer_norm.backward_weight(ln_cache)

    def test_stage_cache_slimmed_after_backward_input(self):
        config = TestStageParity.CONFIG
        (stage,) = build_gpt_stages(config, 1, seed=0)
        rng = np.random.default_rng(1)
        _, cache = stage.forward(
            rng.integers(0, 32, size=(2, 8)), targets=rng.integers(0, 32, size=(2, 8))
        )
        stage.backward_input(None, cache, loss_scale=1.0)
        assert cache.loss_cache is None and cache.stage_input is None
        for layer_cache in cache.layer_caches:
            assert layer_cache.attn_cache.queries is None
            assert layer_cache.mlp_cache.pre_gelu is None
        stage.backward_weight(cache)
