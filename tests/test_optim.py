"""Tests for the optimisers and learning-rate schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim import (
    SGD,
    Adam,
    AdamW,
    ConstantSchedule,
    CosineWithWarmup,
    LinearWarmupLinearDecay,
)
from repro.tensor.parameter import Parameter


def quadratic_parameter(start: float = 5.0) -> Parameter:
    """A 1-element parameter for minimising f(w) = w^2 (gradient 2w)."""
    return Parameter(np.array([start]))


class TestSGD:
    def test_plain_step(self):
        parameter = Parameter(np.array([1.0, 2.0]))
        parameter.grad[...] = np.array([0.5, 0.5])
        SGD([parameter], lr=0.1).step()
        assert np.allclose(parameter.data, [0.95, 1.95])

    def test_momentum_accelerates(self):
        plain = quadratic_parameter()
        momentum = quadratic_parameter()
        sgd_plain = SGD([plain], lr=0.01)
        sgd_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(30):
            plain.grad[...] = 2 * plain.data
            momentum.grad[...] = 2 * momentum.data
            sgd_plain.step()
            sgd_momentum.step()
        assert abs(momentum.data[0]) < abs(plain.data[0])

    def test_weight_decay_shrinks_weights(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.5)
        parameter.grad[...] = 0.0
        optimizer.step()
        assert parameter.data[0] < 1.0

    def test_requires_grad_false_is_skipped(self):
        parameter = Parameter(np.array([1.0]), requires_grad=False)
        parameter.grad[...] = 10.0
        SGD([parameter], lr=0.1).step()
        assert parameter.data[0] == 1.0

    def test_invalid_hyperparameters_raise(self):
        with pytest.raises(ValueError):
            SGD([quadratic_parameter()], lr=-1)
        with pytest.raises(ValueError):
            SGD([quadratic_parameter()], lr=0.1, momentum=1.5)

    def test_zero_grad(self):
        parameter = quadratic_parameter()
        parameter.grad[...] = 3.0
        optimizer = SGD([parameter], lr=0.1)
        optimizer.zero_grad()
        assert np.all(parameter.grad == 0)


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter = quadratic_parameter()
        optimizer = Adam([parameter], lr=0.5)
        for _ in range(100):
            parameter.grad[...] = 2 * parameter.data
            optimizer.step()
        assert abs(parameter.data[0]) < 0.05

    def test_first_step_size_close_to_lr(self):
        """Adam's bias correction makes the first update approximately lr-sized."""
        parameter = Parameter(np.array([1.0]))
        parameter.grad[...] = 0.3
        Adam([parameter], lr=0.01).step()
        assert parameter.data[0] == pytest.approx(1.0 - 0.01, abs=1e-4)

    def test_invalid_betas_raise(self):
        with pytest.raises(ValueError):
            Adam([quadratic_parameter()], betas=(1.2, 0.9))

    def test_adamw_decay_is_decoupled(self):
        """With zero gradient, AdamW still decays the weight; plain Adam does not."""
        adam_param = Parameter(np.array([1.0]))
        adamw_param = Parameter(np.array([1.0]))
        adam = Adam([adam_param], lr=0.1, weight_decay=0.0)
        adamw = AdamW([adamw_param], lr=0.1, weight_decay=0.1)
        adam_param.grad[...] = 0.0
        adamw_param.grad[...] = 0.0
        adam.step()
        adamw.step()
        assert adam_param.data[0] == pytest.approx(1.0)
        assert adamw_param.data[0] < 1.0

    def test_deterministic_given_same_gradients(self):
        a, b = quadratic_parameter(), quadratic_parameter()
        opt_a, opt_b = Adam([a], lr=0.1), Adam([b], lr=0.1)
        for _ in range(5):
            a.grad[...] = 2 * a.data
            b.grad[...] = 2 * b.data
            opt_a.step()
            opt_b.step()
        assert np.allclose(a.data, b.data)


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.01)
        assert schedule.lr_at(0) == schedule.lr_at(1000) == 0.01

    def test_cosine_warmup_then_decay(self):
        schedule = CosineWithWarmup(max_lr=1.0, warmup_iterations=10, total_iterations=110, min_lr=0.1)
        assert schedule.lr_at(0) == pytest.approx(0.1, abs=0.01)
        assert schedule.lr_at(9) == pytest.approx(1.0)
        assert schedule.lr_at(110) == pytest.approx(0.1)
        mid = schedule.lr_at(60)
        assert 0.1 < mid < 1.0

    def test_cosine_is_monotonically_decreasing_after_warmup(self):
        schedule = CosineWithWarmup(max_lr=1.0, warmup_iterations=5, total_iterations=50)
        values = [schedule.lr_at(i) for i in range(5, 50)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_linear_decay(self):
        schedule = LinearWarmupLinearDecay(max_lr=1.0, warmup_iterations=0, total_iterations=10, min_lr=0.0)
        assert schedule.lr_at(5) == pytest.approx(0.5)
        assert schedule.lr_at(10) == pytest.approx(0.0)

    def test_apply_sets_optimizer_lr(self):
        parameter = quadratic_parameter()
        optimizer = Adam([parameter], lr=123.0)
        ConstantSchedule(0.25).apply(optimizer, iteration=3)
        assert optimizer.lr == 0.25

    def test_invalid_configuration_raises(self):
        with pytest.raises(ValueError):
            CosineWithWarmup(max_lr=-1, warmup_iterations=0, total_iterations=10)
        with pytest.raises(ValueError):
            ConstantSchedule(0.0)
