"""Tests for the gradient/activation compressors and error feedback."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    AdaCompCompressor,
    ErrorFeedback,
    FP16Compressor,
    NoCompression,
    PowerSGDCompressor,
    QSGDCompressor,
    RandomKCompressor,
    SignSGDCompressor,
    TernGradCompressor,
    TopKCompressor,
    compression_error,
    compression_ratio,
    cosine_similarity,
    relative_error,
)
from repro.compression.base import UNCOMPRESSED_BYTES_PER_ELEMENT
from repro.compression.powersgd import matrix_view, orthogonalise


def low_rank_matrix(rng, rows=64, cols=32, rank=3, noise=0.0):
    """A matrix of known low rank plus optional noise."""
    matrix = rng.normal(size=(rows, rank)) @ rng.normal(size=(rank, cols))
    if noise:
        matrix = matrix + noise * rng.normal(size=(rows, cols))
    return matrix


class TestNoCompression:
    def test_roundtrip_is_exact(self, rng):
        tensor = rng.normal(size=(5, 7))
        approx, payload = NoCompression().roundtrip(tensor)
        assert np.array_equal(approx, tensor)
        assert payload.compression_ratio == pytest.approx(1.0)


class TestOrthogonalise:
    def test_columns_are_orthonormal(self, rng):
        matrix = orthogonalise(rng.normal(size=(20, 5)))
        gram = matrix.T @ matrix
        assert np.allclose(gram, np.eye(5), atol=1e-8)

    def test_degenerate_column_handled(self):
        matrix = np.zeros((4, 2))
        matrix[:, 0] = [1.0, 0, 0, 0]
        result = orthogonalise(matrix)
        assert np.all(np.isfinite(result))

    def test_matrix_view_flattens_leading_dims(self, rng):
        tensor = rng.normal(size=(2, 3, 5))
        assert matrix_view(tensor).shape == (6, 5)
        assert matrix_view(rng.normal(size=7)).shape == (7,)


class TestPowerSGD:
    def test_exact_on_low_rank_input(self, rng):
        matrix = low_rank_matrix(rng, rank=3)
        compressor = PowerSGDCompressor(rank=3, min_compression_elements=0)
        # A couple of warm-started iterations converge to the exact subspace.
        for _ in range(3):
            approx, payload = compressor.roundtrip(matrix, key="m")
        assert relative_error(matrix, approx) < 1e-6
        assert payload.compression_ratio > 5

    def test_payload_size_formula(self, rng):
        compressor = PowerSGDCompressor(rank=4, min_compression_elements=0)
        tensor = rng.normal(size=(40, 30))
        payload = compressor.compress(tensor, key="x")
        expected_elements = 4 * (40 + 30)
        assert payload.payload_bytes == expected_elements * UNCOMPRESSED_BYTES_PER_ELEMENT
        assert compressor.expected_payload_elements((40, 30)) == expected_elements

    def test_small_tensors_pass_through(self, rng):
        compressor = PowerSGDCompressor(rank=4, min_compression_elements=10_000)
        tensor = rng.normal(size=(10, 10))
        approx, payload = compressor.roundtrip(tensor, key="small")
        assert np.array_equal(approx, tensor)
        assert payload.metadata["compressed"] is False

    def test_one_dimensional_pass_through(self, rng):
        compressor = PowerSGDCompressor(rank=4, min_compression_elements=0)
        tensor = rng.normal(size=100)
        approx, payload = compressor.roundtrip(tensor, key="bias")
        assert np.array_equal(approx, tensor)

    def test_query_reuse_improves_accuracy(self, rng):
        matrix = low_rank_matrix(rng, rank=4, noise=0.01)
        warm = PowerSGDCompressor(rank=4, reuse_query=True, min_compression_elements=0)
        cold = PowerSGDCompressor(rank=4, reuse_query=False, min_compression_elements=0)
        for _ in range(5):
            warm_approx, _ = warm.roundtrip(matrix, key="k")
            cold_approx, _ = cold.roundtrip(matrix, key="k")
        assert relative_error(matrix, warm_approx) <= relative_error(matrix, cold_approx) + 1e-9

    def test_reset_clears_state(self, rng):
        compressor = PowerSGDCompressor(rank=2, min_compression_elements=0)
        compressor.compress(rng.normal(size=(20, 10)), key="a")
        assert compressor.stored_query("a") is not None
        compressor.reset()
        assert compressor.stored_query("a") is None

    def test_higher_rank_lower_error(self, rng):
        matrix = rng.normal(size=(64, 48))
        errors = []
        for rank in (1, 4, 16):
            compressor = PowerSGDCompressor(rank=rank, min_compression_elements=0)
            approx, _ = compressor.roundtrip(matrix, key="x")
            errors.append(relative_error(matrix, approx))
        assert errors[0] > errors[1] > errors[2]

    def test_invalid_rank_raises(self):
        with pytest.raises(ValueError):
            PowerSGDCompressor(rank=0)


class TestTopK:
    def test_keeps_largest_magnitudes(self):
        tensor = np.array([[0.1, -5.0, 0.2, 4.0, 0.0, 0.3]])
        compressor = TopKCompressor(fraction=2 / 6, min_elements=0)
        approx, payload = compressor.roundtrip(tensor)
        assert approx[0, 1] == -5.0 and approx[0, 3] == 4.0
        assert np.count_nonzero(approx) == 2

    def test_payload_accounts_for_indices(self, rng):
        compressor = TopKCompressor(fraction=0.1, min_elements=0)
        payload = compressor.compress(rng.normal(size=1000))
        assert payload.payload_bytes == 100 * (UNCOMPRESSED_BYTES_PER_ELEMENT + 4)

    def test_full_fraction_is_lossless(self, rng):
        tensor = rng.normal(size=(8, 8))
        approx, _ = TopKCompressor(fraction=1.0, min_elements=0).roundtrip(tensor)
        assert np.allclose(approx, tensor)

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            TopKCompressor(fraction=0.0)

    def test_randomk_is_unbiased_in_expectation(self, rng):
        tensor = np.ones((40, 40))
        compressor = RandomKCompressor(fraction=0.25, seed=3, min_elements=0)
        approximations = [compressor.roundtrip(tensor)[0] for _ in range(30)]
        mean = np.mean(approximations, axis=0)
        assert mean.mean() == pytest.approx(1.0, abs=0.15)


class TestQuantization:
    def test_terngrad_values_are_ternary(self, rng):
        tensor = rng.normal(size=(16, 16))
        compressor = TernGradCompressor(seed=1)
        approx, payload = compressor.roundtrip(tensor)
        scale = payload.data["scale"]
        assert set(np.unique(np.round(approx / scale, 6))).issubset({-1.0, 0.0, 1.0})

    def test_terngrad_compression_ratio_large(self, rng):
        payload = TernGradCompressor().compress(rng.normal(size=(64, 64)))
        assert payload.compression_ratio > 4

    def test_signsgd_preserves_signs(self, rng):
        tensor = rng.normal(size=(8, 8))
        approx, _ = SignSGDCompressor().roundtrip(tensor)
        nonzero = tensor != 0
        assert np.all(np.sign(approx[nonzero]) == np.sign(tensor[nonzero]))

    def test_fp16_roundtrip_close(self, rng):
        tensor = rng.normal(size=(16, 16))
        approx, payload = FP16Compressor().roundtrip(tensor)
        assert relative_error(tensor, approx) < 1e-3
        assert payload.compression_ratio == pytest.approx(1.0)


class TestErrorFeedback:
    def test_residual_accumulates_and_corrects(self, rng):
        """With error feedback, the running sum of delivered tensors tracks the true sum."""
        compressor = PowerSGDCompressor(rank=1, min_compression_elements=0)
        feedback = ErrorFeedback(compressor, enabled=True)
        true_sum = np.zeros((32, 16))
        delivered_sum = np.zeros((32, 16))
        for step in range(20):
            tensor = rng.normal(size=(32, 16))
            true_sum += tensor
            approx, _, _ = feedback.compress_with_feedback(tensor, key="g")
            delivered_sum += approx
        residual = feedback.residual("g")
        # sum(delivered) + residual == sum(true) by construction of error feedback.
        assert np.allclose(delivered_sum + residual, true_sum, atol=1e-8)

    def test_disabled_feedback_keeps_no_state(self, rng):
        feedback = ErrorFeedback(PowerSGDCompressor(rank=1, min_compression_elements=0), enabled=False)
        feedback.compress_with_feedback(rng.normal(size=(16, 8)), key="g")
        assert feedback.residual("g") is None
        assert feedback.residual_bytes() == 0

    def test_residual_bytes_counts_storage(self, rng):
        feedback = ErrorFeedback(PowerSGDCompressor(rank=1, min_compression_elements=0))
        feedback.compress_with_feedback(rng.normal(size=(16, 8)), key="a")
        feedback.compress_with_feedback(rng.normal(size=(16, 8)), key="b")
        assert feedback.residual_bytes() == 2 * 16 * 8 * 4

    def test_clear_and_reset(self, rng):
        feedback = ErrorFeedback(PowerSGDCompressor(rank=1, min_compression_elements=0))
        feedback.compress_with_feedback(rng.normal(size=(16, 8)), key="a")
        feedback.clear("a")
        assert feedback.residual("a") is None
        feedback.compress_with_feedback(rng.normal(size=(16, 8)), key="b")
        feedback.reset()
        assert feedback.residual("b") is None


class TestMetrics:
    def test_cosine_similarity_extremes(self, rng):
        a = rng.normal(size=100)
        assert cosine_similarity(a, a) == pytest.approx(1.0)
        assert cosine_similarity(a, -a) == pytest.approx(-1.0)
        assert cosine_similarity(a, np.zeros(100)) == 0.0

    def test_compression_error_zero_for_identity(self, rng):
        a = rng.normal(size=(4, 4))
        assert compression_error(a, a) == 0.0

    def test_compression_ratio_reads_payload(self, rng):
        payload = TopKCompressor(fraction=0.1, min_elements=0).compress(rng.normal(size=1000))
        assert compression_ratio(payload) == payload.compression_ratio


class TestCompressionProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(min_value=4, max_value=40),
        cols=st.integers(min_value=4, max_value=40),
        rank=st.integers(min_value=1, max_value=8),
    )
    def test_powersgd_payload_never_larger_than_original(self, rows, cols, rank):
        rng = np.random.default_rng(rows * 1000 + cols * 10 + rank)
        tensor = rng.normal(size=(rows, cols))
        compressor = PowerSGDCompressor(rank=rank, min_compression_elements=0)
        payload = compressor.compress(tensor, key="p")
        assert payload.payload_bytes <= payload.original_bytes

    @settings(max_examples=20, deadline=None)
    @given(fraction=st.floats(min_value=0.01, max_value=1.0))
    def test_topk_reconstruction_error_bounded_by_dropped_mass(self, fraction):
        rng = np.random.default_rng(int(fraction * 1e6))
        tensor = rng.normal(size=256)
        approx, _ = TopKCompressor(fraction=fraction, min_elements=0).roundtrip(tensor)
        assert np.linalg.norm(tensor - approx) <= np.linalg.norm(tensor) + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(steps=st.integers(min_value=2, max_value=12))
    def test_error_feedback_invariant(self, steps):
        """delivered-so-far + residual == true-so-far holds at every step."""
        rng = np.random.default_rng(steps)
        feedback = ErrorFeedback(TopKCompressor(fraction=0.1, min_elements=0))
        true_sum = np.zeros(128)
        delivered = np.zeros(128)
        for _ in range(steps):
            tensor = rng.normal(size=128)
            true_sum += tensor
            approx, _, _ = feedback.compress_with_feedback(tensor, key="k")
            delivered += approx
            assert np.allclose(delivered + feedback.residual("k"), true_sum, atol=1e-9)


# ----------------------------------------------------------------------------------
# Round-trip properties shared by every codec
# ----------------------------------------------------------------------------------

#: Every codec in :mod:`repro.compression`, with its analytic payload-byte formula
#: for a dense tensor of ``size`` elements (``None`` = data-dependent payload).
def _codec_catalogue():
    bytes_per = UNCOMPRESSED_BYTES_PER_ELEMENT
    index_bytes = 4

    def topk_bytes(size):
        kept = max(1, min(size, int(round(0.1 * size))))
        return kept * (bytes_per + index_bytes)

    return {
        "none": (lambda: NoCompression(), lambda size: size * bytes_per),
        "powersgd": (
            lambda: PowerSGDCompressor(rank=2, min_compression_elements=0),
            None,  # shape-dependent; checked against expected_payload_elements below
        ),
        "topk": (lambda: TopKCompressor(fraction=0.1, min_elements=0), topk_bytes),
        "randomk": (
            lambda: RandomKCompressor(fraction=0.1, seed=1, min_elements=0),
            topk_bytes,
        ),
        "qsgd": (
            lambda: QSGDCompressor(bits=4, seed=2),
            lambda size: int(np.ceil(size * 5 / 8)) + 4,
        ),
        "terngrad": (
            lambda: TernGradCompressor(seed=3),
            lambda size: int(np.ceil(size / 4)) + 4,
        ),
        "signsgd": (
            lambda: SignSGDCompressor(),
            lambda size: int(np.ceil(size / 8)) + 4,
        ),
        "fp16": (lambda: FP16Compressor(), lambda size: size * bytes_per),
        "adacomp": (lambda: AdaCompCompressor(min_elements=0), None),
    }


CODEC_NAMES = sorted(_codec_catalogue())


class TestAllCodecRoundTrips:
    """Round-trip and payload-accounting properties every codec must satisfy."""

    @pytest.mark.parametrize("codec_name", CODEC_NAMES)
    @settings(max_examples=10, deadline=None)
    @given(rows=st.integers(min_value=4, max_value=24), cols=st.integers(min_value=4, max_value=24))
    def test_roundtrip_shape_and_payload_accounting(self, codec_name, rows, cols):
        """Decompression restores the shape; payload bytes match the analytic
        estimate that :mod:`repro.compression.metrics` builds its ratios from."""
        build, payload_formula = _codec_catalogue()[codec_name]
        codec = build()
        rng = np.random.default_rng(rows * 100 + cols)
        tensor = rng.normal(size=(rows, cols))
        approx, payload = codec.roundtrip(tensor, key="t")

        assert approx.shape == tensor.shape
        assert np.all(np.isfinite(approx))
        assert payload.original_bytes == tensor.size * UNCOMPRESSED_BYTES_PER_ELEMENT
        assert compression_ratio(payload) == payload.original_bytes / payload.payload_bytes

        if codec_name == "powersgd":
            expected = codec.expected_payload_elements(tensor.shape) * UNCOMPRESSED_BYTES_PER_ELEMENT
            assert payload.payload_bytes == expected
        elif codec_name == "adacomp":
            kept = payload.metadata["kept"]
            assert payload.payload_bytes == max(kept * (UNCOMPRESSED_BYTES_PER_ELEMENT + 4), 1)
        else:
            assert payload.payload_bytes == payload_formula(tensor.size)

    @pytest.mark.parametrize("codec_name", CODEC_NAMES)
    def test_residual_shrinks_under_error_feedback(self, codec_name, rng):
        """Feeding the residual back makes the *time-averaged* delivery converge:
        after a few steps, the mean delivered tensor is closer to the true tensor
        than any single lossy round-trip was."""
        build, _ = _codec_catalogue()[codec_name]
        codec = build()
        feedback = ErrorFeedback(codec, enabled=True)
        tensor = rng.normal(size=(16, 12))

        first_approx, _, first_residual = feedback.compress_with_feedback(tensor, key="g")
        first_error = np.linalg.norm(tensor - first_approx)
        delivered = first_approx.copy()
        steps = 8
        for _ in range(steps - 1):
            approx, _, _ = feedback.compress_with_feedback(tensor, key="g")
            delivered += approx
        mean_error = np.linalg.norm(delivered / steps - tensor)

        if codec_name == "randomk":
            # Random-k rescales the kept values by 1/fraction to be unbiased, which
            # makes it a non-contraction: error feedback around it diverges.  That
            # is why it is used as an unbiased estimator, never inside EF — the
            # test documents the divergence instead of the shrinkage.
            assert mean_error > first_error
        elif first_error < 1e-9:  # lossless codecs (none, fp16-at-this-scale)
            assert mean_error < 1e-6
        else:
            assert mean_error < first_error
        # The invariant behind the convergence: delivered + residual == steps * tensor.
        assert np.allclose(
            delivered + feedback.residual("g"), steps * tensor, atol=1e-8
        )

    @pytest.mark.parametrize("codec_name", CODEC_NAMES)
    def test_reset_is_idempotent_and_clears_state(self, codec_name, rng):
        build, _ = _codec_catalogue()[codec_name]
        codec = build()
        codec.roundtrip(rng.normal(size=(8, 8)), key="s")
        codec.reset()
        codec.reset()
        approx, payload = codec.roundtrip(rng.normal(size=(8, 8)), key="s")
        assert approx.shape == (8, 8)
        assert payload.payload_bytes > 0

    @pytest.mark.parametrize("codec_name", CODEC_NAMES)
    @pytest.mark.parametrize("shape", [(16, 12), (64,), (2, 6, 8)])
    def test_into_kernels_are_bit_identical_to_safe_api(self, codec_name, shape, rng):
        """compress_into/decompress_into == compress/decompress, bit for bit,
        including the default fallbacks and every passthrough branch."""
        build, _ = _codec_catalogue()[codec_name]
        safe, fast = build(), build()
        for step in range(3):  # stateful codecs must agree along the trajectory
            tensor = rng.normal(size=shape)
            want = safe.decompress(safe.compress(tensor, key="t"))
            payload = fast.compress_into(tensor, key="t")
            got = fast.decompress_into(payload, np.empty(shape))
            assert np.array_equal(got, want), f"{codec_name} step {step}"

    @pytest.mark.parametrize("codec_name", ["qsgd", "topk", "powersgd"])
    def test_non_contiguous_output_rejected_loudly(self, codec_name, rng):
        """reshape on a strided buffer would copy — the kernels must refuse it
        instead of silently writing into the copy."""
        build, _ = _codec_catalogue()[codec_name]
        codec = build()
        tensor = rng.normal(size=(16, 12))
        payload = codec.compress_into(tensor, key="t")
        strided = np.empty((16, 24))[:, ::2]
        with pytest.raises(ValueError, match="contiguous"):
            codec.decompress_into(payload, strided)

    @pytest.mark.parametrize("codec_name", ["qsgd", "topk", "powersgd"])
    def test_workspace_payloads_alias_but_safe_payloads_do_not(self, codec_name, rng):
        """The _into payload may alias workspace memory (invalidated by the next
        call); the safe API's payload must survive a subsequent compression."""
        build, _ = _codec_catalogue()[codec_name]
        codec = build()
        first = rng.normal(size=(16, 12))
        second = rng.normal(size=(16, 12))
        safe_payload = codec.compress(first, key="t")
        want = codec.decompress(safe_payload).copy()
        codec.compress_into(second, key="t")  # may clobber workspace views
        assert np.array_equal(codec.decompress(safe_payload), want)


class TestStochasticStreamKeying:
    """Counter-keyed RNG: the draw depends on (seed, key, call-on-that-key) only."""

    @pytest.mark.parametrize(
        "build",
        [
            lambda: QSGDCompressor(bits=4, seed=7),
            lambda: TernGradCompressor(seed=7),
            lambda: RandomKCompressor(fraction=0.25, seed=7, min_elements=0),
        ],
        ids=["qsgd", "terngrad", "randomk"],
    )
    def test_streams_are_independent_of_visit_order(self, build, rng):
        tensor_a = rng.normal(size=(12, 8))
        tensor_b = rng.normal(size=(12, 8))
        forward, backward = build(), build()
        fa, _ = forward.roundtrip(tensor_a, key="a")
        fb, _ = forward.roundtrip(tensor_b, key="b")
        bb, _ = backward.roundtrip(tensor_b, key="b")
        ba, _ = backward.roundtrip(tensor_a, key="a")
        assert np.array_equal(fa, ba)
        assert np.array_equal(fb, bb)

    def test_repeated_calls_on_one_key_advance_the_stream(self, rng):
        codec = QSGDCompressor(bits=4, seed=0)
        tensor = rng.normal(size=(12, 8))
        first, _ = codec.roundtrip(tensor, key="k")
        second, _ = codec.roundtrip(tensor, key="k")
        assert not np.array_equal(first, second)
        # ... and reset replays the trajectory exactly.
        codec.reset()
        replay, _ = codec.roundtrip(tensor, key="k")
        assert np.array_equal(first, replay)

    def test_qsgd_streams_are_process_stable(self):
        """Pinned draws: the packed-QSGD kernel's stream must never silently
        change (it would break bucketed/per-parameter parity across versions)."""
        codec = QSGDCompressor(bits=2, seed=1)
        tensor = np.linspace(-1.0, 1.0, 12).reshape(3, 4)
        approx, payload = codec.roundtrip(tensor, key="pin")
        assert payload.data["codes"].dtype == np.int8
        expected = np.array(
            [[-3, -2, -2, -1], [0, -1, 0, 1], [2, 2, 3, 3]], dtype=np.int8
        )
        assert np.array_equal(payload.data["codes"].reshape(3, 4), expected)


class TestQSGDPackedCodes:
    def test_codes_are_one_packed_integer_per_element(self, rng):
        tensor = rng.normal(size=(16, 16))
        for bits, dtype in [(1, np.int8), (4, np.int8), (7, np.int8), (8, np.int16)]:
            codec = QSGDCompressor(bits=bits, seed=0)
            payload = codec.compress(tensor, key="t")
            codes = payload.data["codes"]
            assert codes.dtype == dtype
            assert codes.size == tensor.size
            levels = codec.num_levels
            assert codes.min() >= -levels and codes.max() <= levels

    def test_quantisation_is_unbiased(self, rng):
        tensor = rng.normal(size=(8, 8))
        codec = QSGDCompressor(bits=3, seed=2)
        mean = np.zeros_like(tensor)
        steps = 400
        for _ in range(steps):
            approx, _ = codec.roundtrip(tensor, key="u")
            mean += approx / steps
        scale = float(np.max(np.abs(tensor)))
        assert np.abs(mean - tensor).max() < 0.15 * scale

    def test_deterministic_mode_rounds_to_nearest(self, rng):
        tensor = rng.normal(size=(16, 16))
        codec = QSGDCompressor(bits=6, seed=0, deterministic=True)
        approx, payload = codec.roundtrip(tensor, key="d")
        step = payload.data["scale"] / codec.num_levels
        assert np.abs(approx - tensor).max() <= 0.5 * step + 1e-12
        again, _ = codec.roundtrip(tensor, key="d")
        assert np.array_equal(approx, again)

    def test_zero_tensor_stays_zero(self):
        codec = QSGDCompressor(bits=4, seed=0)
        approx, payload = codec.roundtrip(np.zeros((4, 4)), key="z")
        assert np.array_equal(approx, np.zeros((4, 4)))
        assert payload.data["scale"] == 0.0


class TestTopKTieBreaking:
    def test_equal_magnitudes_resolved_by_lowest_index(self):
        tensor = np.array([2.0, -2.0, 2.0, -2.0, 5.0, 1.0])
        compressor = TopKCompressor(fraction=0.5, min_elements=0)
        payload = compressor.compress(tensor, key="t")
        # 5.0 always wins; the 2.0-magnitude tie goes to the lowest indices.
        assert list(payload.data["indices"]) == [0, 1, 4]

    def test_all_equal_magnitudes_keep_a_prefix(self):
        tensor = np.full(10, -3.0)
        payload = TopKCompressor(fraction=0.3, min_elements=0).compress(tensor, key="t")
        assert list(payload.data["indices"]) == [0, 1, 2]

    def test_indices_are_sorted_ascending(self, rng):
        tensor = rng.normal(size=256)
        payload = TopKCompressor(fraction=0.1, min_elements=0).compress(tensor, key="t")
        indices = payload.data["indices"]
        assert np.array_equal(indices, np.sort(indices))

    @settings(max_examples=30, deadline=None)
    @given(
        size=st.integers(min_value=2, max_value=64),
        fraction=st.floats(min_value=0.05, max_value=1.0),
        duplicates=st.booleans(),
    )
    def test_selection_matches_lexicographic_reference(self, size, fraction, duplicates):
        """The O(n) partition kernel == sorting by (-|value|, index)."""
        rng = np.random.default_rng(size * 101 + int(fraction * 997))
        tensor = rng.normal(size=size)
        if duplicates:  # force magnitude ties
            tensor = np.round(tensor, 1)
        compressor = TopKCompressor(fraction=fraction, min_elements=0)
        payload = compressor.compress(tensor, key="t")
        kept = payload.metadata["kept"]
        order = np.lexsort((np.arange(size), -np.abs(tensor)))
        expected = np.sort(order[:kept])
        assert np.array_equal(payload.data["indices"], expected)
