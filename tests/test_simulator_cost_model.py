"""Tests for the hardware catalogue and the analytic cost model."""

from __future__ import annotations

import pytest

from repro.models import GPT_2_5B, GPT_8_3B
from repro.parallel.process_groups import ParallelLayout
from repro.simulator.cost_model import CostModel, TrainingJob
from repro.simulator.hardware import A100, ClusterSpec, SimulationConstants


@pytest.fixture
def job() -> TrainingJob:
    return TrainingJob(model=GPT_8_3B)


@pytest.fixture
def cost(job) -> CostModel:
    return CostModel(job)


class TestHardware:
    def test_a100_peak(self):
        assert A100.peak_fp16_flops == pytest.approx(312e12)
        assert A100.memory_bytes == pytest.approx(40e9)

    def test_invalid_constants_raise(self):
        with pytest.raises(ValueError):
            SimulationConstants(compute_efficiency=0.0)
        with pytest.raises(ValueError):
            SimulationConstants(collective_bw_efficiency=1.5)
        with pytest.raises(ValueError):
            SimulationConstants(p2p_bandwidth_gbps=-1)

    def test_p2p_bandwidth_capped_by_nic(self):
        cluster = ClusterSpec(constants=SimulationConstants(p2p_bandwidth_gbps=10_000))
        assert cluster.p2p_bandwidth_bytes_per_s <= 200e9 / 8


class TestTrainingJob:
    def test_paper_defaults(self, job):
        assert job.num_micro_batches == 16
        assert job.num_stages == 4
        assert job.seq_length == 1024

    def test_invalid_batch_split_raises(self):
        with pytest.raises(ValueError):
            TrainingJob(model=GPT_8_3B, global_batch_size=500)
        with pytest.raises(ValueError):
            TrainingJob(model=GPT_8_3B, micro_batch_size=7)

    def test_interleaving_requires_divisible_micro_batches(self):
        layout = ParallelLayout(tensor_parallel=4, pipeline_parallel=8, data_parallel=4)
        # 16 micro-batches over 8 stages is fine; 16 over 3 stages would not be.
        TrainingJob(model=GPT_8_3B, layout=layout, num_model_chunks=2)
        bad_layout = ParallelLayout(tensor_parallel=8, pipeline_parallel=3, data_parallel=4)
        with pytest.raises(ValueError):
            TrainingJob(model=GPT_8_3B, layout=bad_layout, num_model_chunks=2)


class TestLayerAssignment:
    def test_layers_split_evenly(self, cost):
        layers = [cost.layers_on_stage(stage) for stage in range(4)]
        assert sum(layers) == GPT_8_3B.num_layers
        assert max(layers) - min(layers) <= 1

    def test_out_of_range_stage_raises(self, cost):
        with pytest.raises(ValueError):
            cost.layers_on_stage(4)


class TestComputeTimes:
    def test_backward_costs_more_than_forward(self, cost):
        for stage in range(4):
            assert cost.backward_time(stage) > cost.forward_time(stage)

    def test_last_stage_pays_for_logits(self, cost):
        assert cost.forward_time(3) > cost.forward_time(1)

    def test_recompute_increases_backward(self, job):
        no_recompute = ClusterSpec(constants=SimulationConstants(recompute_activations=False))
        with_recompute = CostModel(job)
        without = CostModel(TrainingJob(model=GPT_8_3B, cluster=no_recompute))
        assert with_recompute.backward_time(1) > without.backward_time(1)

    def test_bigger_model_is_slower(self):
        small = CostModel(TrainingJob(model=GPT_2_5B))
        large = CostModel(TrainingJob(model=GPT_8_3B))
        assert large.forward_time(1) > small.forward_time(1)


class TestCommunicationVolumes:
    def test_interstage_volume(self, cost, job):
        expected = 8 * 1024 * GPT_8_3B.hidden_size * 2 * 8  # mb*seq*h*fp16*tp
        assert cost.interstage_message_bytes() == pytest.approx(expected)

    def test_compressed_activation_much_smaller(self, cost):
        assert cost.compressed_activation_bytes(16) < cost.interstage_message_bytes() / 50

    def test_compressed_volume_grows_with_rank(self, cost):
        assert cost.compressed_activation_bytes(128) > cost.compressed_activation_bytes(16)

    def test_dp_bytes_scale_with_stage_parameters(self, cost):
        # Stage 0 holds the position embedding on top of its layers.
        assert cost.dp_gradient_bytes(0) > cost.dp_gradient_bytes(1)

    def test_dp_compression_reduces_bytes(self, cost):
        assert cost.dp_compressed_gradient_bytes(1, 128) < cost.dp_gradient_bytes(1) / 5

    def test_single_replica_dp_time_is_zero(self):
        layout = ParallelLayout(tensor_parallel=8, pipeline_parallel=4, data_parallel=1)
        cost = CostModel(TrainingJob(model=GPT_8_3B, layout=layout, global_batch_size=128))
        assert cost.dp_time(0) == 0.0

    def test_stage_weight_matrices_match_layer_structure(self, cost):
        matrices = cost.stage_weight_matrices(1)
        assert len(matrices) == 4 * cost.layers_on_stage(1)
        hidden = GPT_8_3B.hidden_size
        assert (hidden, 3 * hidden) in matrices and (4 * hidden, hidden) in matrices


class TestEmbeddingCosts:
    def test_fused_cheaper_than_baseline(self, cost):
        baseline = cost.embedding_dp_time() + cost.embedding_sync_time()
        assert cost.fused_embedding_time() < baseline

    def test_single_stage_pipeline_has_no_sync(self):
        layout = ParallelLayout(tensor_parallel=8, pipeline_parallel=1, data_parallel=4)
        cost = CostModel(TrainingJob(model=GPT_2_5B, layout=layout, global_batch_size=512))
        assert cost.embedding_sync_time() == 0.0


class TestCompressionKernels:
    def test_compress_time_grows_with_rank(self, cost):
        rows, cols = 8 * 1024, GPT_8_3B.hidden_size
        assert cost.powersgd_compress_time(rows, cols, 128) > cost.powersgd_compress_time(rows, cols, 16)

    def test_decompress_faster_than_compress(self, cost):
        rows, cols = 8 * 1024, GPT_8_3B.hidden_size
        assert cost.powersgd_decompress_time(rows, cols, 16) < cost.powersgd_compress_time(rows, cols, 16)

    def test_compression_throughput_exceeds_interconnect(self, cost, job):
        """Paper Section 9.6: the kernels are far faster than the 200 Gb/s link."""
        rows, cols = 8 * 1024, GPT_8_3B.hidden_size
        seconds = cost.powersgd_compress_time(rows, cols, 16)
        gbps = rows * cols * 2 * 8 / seconds / 1e9
        assert gbps > job.cluster.topology.inter_node_bandwidth_gbps

    def test_dp_compression_overhead_positive(self, cost):
        assert cost.dp_compression_overhead(0, 128) > 0


class TestNICContention:
    def test_lower_tp_degree_increases_contention(self):
        """With TP < 8 a node carries several stages' traffic through one NIC."""
        tp8 = CostModel(TrainingJob(model=GPT_8_3B))
        layout = ParallelLayout(tensor_parallel=2, pipeline_parallel=16, data_parallel=4)
        tp2 = CostModel(TrainingJob(model=GPT_8_3B, layout=layout))
        # Per-transfer inter-stage volume: tp2 sends 2 copies but shares the NIC 4-ways.
        assert tp2.interstage_message_bytes() == pytest.approx(tp8.interstage_message_bytes())

    def test_scatter_gather_reduces_volume(self):
        cluster = ClusterSpec(constants=SimulationConstants(scatter_gather_pipeline_comm=True))
        optimised = CostModel(TrainingJob(model=GPT_8_3B, cluster=cluster))
        default = CostModel(TrainingJob(model=GPT_8_3B))
        assert optimised.interstage_message_bytes() < default.interstage_message_bytes()
