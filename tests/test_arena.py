"""Tests for the flat-arena execution core.

Three layers are covered:

* **arena adoption** — parameters keep their values bit-for-bit, every in-place
  access aliases the flat buffers, and ``zero_grad`` is one buffer-wide write;
* **bucket planning** — size-targeted buckets exactly tile the DP-synchronised
  parameters (a Hypothesis property: the sum of bucket elements equals the sum of
  parameter sizes, spans are disjoint and arena-contiguous);
* **fused optimiser** — :class:`repro.optim.FusedAdam` matches the per-parameter
  :class:`repro.optim.Adam`/:class:`repro.optim.AdamW` bit-for-bit across steps,
  weight-decay modes, and checkpoint moment views.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim import Adam, AdamW, FusedAdam
from repro.parallel.arena import (
    WIRE_BYTES_PER_ELEMENT,
    ParameterArena,
    build_gradient_buckets,
)
from repro.tensor.parameter import Parameter


def make_parameters(shapes, rng, prefix="p", requires_grad=None):
    parameters = []
    for index, shape in enumerate(shapes):
        parameter = Parameter(
            rng.standard_normal(shape),
            name=f"{prefix}{index}",
            requires_grad=True if requires_grad is None else requires_grad[index],
        )
        parameter.grad[...] = rng.standard_normal(shape)
        parameters.append(parameter)
    return parameters


class TestParameterArena:
    def test_adoption_preserves_values_bit_for_bit(self, rng):
        parameters = make_parameters([(4, 3), (7,), (2, 2, 2)], rng)
        before_data = [p.data.copy() for p in parameters]
        before_grad = [p.grad.copy() for p in parameters]
        ParameterArena(parameters)
        for parameter, data, grad in zip(parameters, before_data, before_grad):
            assert np.array_equal(parameter.data, data)
            assert np.array_equal(parameter.grad, grad)

    def test_views_alias_the_flat_buffers(self, rng):
        parameters = make_parameters([(3, 2), (5,)], rng)
        arena = ParameterArena(parameters)
        # Writing through the parameter view is visible in the arena and back.
        parameters[0].grad[...] = 7.0
        start, stop = arena.span(parameters[0])
        assert np.all(arena.grad[start:stop] == 7.0)
        arena.data[...] = 1.5
        assert np.all(parameters[1].data == 1.5)
        # In-place optimiser-style ops write through too.
        parameters[1].data -= 0.5
        assert np.all(arena.data[arena.span(parameters[1])[0] :] == 1.0)

    def test_zero_grad_clears_every_parameter(self, rng):
        parameters = make_parameters([(3, 3), (4,)], rng)
        arena = ParameterArena(parameters)
        arena.zero_grad()
        for parameter in parameters:
            assert np.all(parameter.grad == 0.0)

    def test_trainable_prefix_is_contiguous(self, rng):
        parameters = make_parameters(
            [(2, 2), (3,), (4,)], rng, requires_grad=[True, False, True]
        )
        arena = ParameterArena(parameters)
        assert arena.num_trainable_elements == 4 + 4
        trainable = [p for p in arena.parameters if p.requires_grad]
        frozen = [p for p in arena.parameters if not p.requires_grad]
        assert [p.name for p in trainable] == ["p0", "p2"]
        assert arena.span(trainable[-1])[1] == arena.num_trainable_elements
        assert arena.span(frozen[0])[0] == arena.num_trainable_elements

    def test_duplicate_parameter_rejected(self, rng):
        (parameter,) = make_parameters([(2, 2)], rng)
        with pytest.raises(ValueError):
            ParameterArena([parameter, parameter])

    def test_foreign_parameter_span_rejected(self, rng):
        parameters = make_parameters([(2, 2)], rng)
        arena = ParameterArena(parameters)
        (other,) = make_parameters([(2, 2)], rng, prefix="q")
        with pytest.raises(KeyError):
            arena.span(other)


class TestGradientBuckets:
    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=24),
        bucket_bytes=st.integers(min_value=1, max_value=512),
        num_stages=st.integers(min_value=1, max_value=3),
    )
    def test_buckets_exactly_tile_the_synced_parameters(self, sizes, bucket_bytes, num_stages):
        """Property: sum of bucket elements == sum of parameter sizes, spans are
        disjoint, contiguous within the arena, and never cross stage boundaries."""
        rng = np.random.default_rng(0)
        parameters = make_parameters([(size,) for size in sizes], rng)
        arena = ParameterArena(parameters)
        per_stage = max(1, len(parameters) // num_stages)
        stage_parameters = [
            parameters[start : start + per_stage]
            for start in range(0, len(parameters), per_stage)
        ]
        buckets = build_gradient_buckets(arena, stage_parameters, bucket_bytes)

        assert sum(bucket.num_elements for bucket in buckets) == sum(sizes)
        assert sum(bucket.wire_bytes for bucket in buckets) == sum(
            parameter.size * WIRE_BYTES_PER_ELEMENT for parameter in parameters
        )
        covered = set()
        for bucket in buckets:
            span = set(range(bucket.start, bucket.stop))
            assert not (span & covered), "bucket spans overlap"
            covered |= span
            # A bucket's parameters all belong to the stage it is labelled with.
            stage_names = {p.name for p in stage_parameters[bucket.stage_index]}
            assert set(bucket.parameter_names) <= stage_names
            # Size target respected unless the bucket is a single oversized parameter.
            if len(bucket.parameter_names) > 1:
                assert bucket.wire_bytes <= bucket_bytes

    def test_skipped_parameters_break_runs(self, rng):
        parameters = make_parameters([(4,), (4,), (4,)], rng)
        arena = ParameterArena(parameters)
        buckets = build_gradient_buckets(
            arena,
            [parameters],
            bucket_bytes=1 << 20,
            skip=lambda stage, parameter: parameter.name == "p1",
        )
        assert [bucket.parameter_names for bucket in buckets] == [("p0",), ("p2",)]
        assert all(bucket.stage_index == 0 for bucket in buckets)

    def test_frozen_parameters_are_never_bucketed(self, rng):
        parameters = make_parameters(
            [(4,), (4,)], rng, requires_grad=[True, False]
        )
        arena = ParameterArena(parameters)
        buckets = build_gradient_buckets(arena, [parameters], bucket_bytes=1 << 20)
        assert [bucket.parameter_names for bucket in buckets] == [("p0",)]

    def test_invalid_bucket_bytes_rejected(self, rng):
        parameters = make_parameters([(4,)], rng)
        arena = ParameterArena(parameters)
        with pytest.raises(ValueError):
            build_gradient_buckets(arena, [parameters], bucket_bytes=0)


class TestFusedAdam:
    SHAPES = [(6, 5), (13,), (3, 4), (1,)]

    def _pair(self, rng, **kwargs):
        """Identical parameter sets: one per-parameter optimiser, one fused."""
        reference = make_parameters(self.SHAPES, rng)
        state = np.random.default_rng(42)
        fused_params = []
        for parameter in reference:
            clone = Parameter(parameter.data.copy(), name=parameter.name)
            clone.grad[...] = parameter.grad
            fused_params.append(clone)
        del state
        arena = ParameterArena(fused_params)
        return reference, fused_params, arena

    @pytest.mark.parametrize("weight_decay", [0.0, 0.05])
    def test_matches_per_parameter_adam_bit_for_bit(self, rng, weight_decay):
        reference, fused_params, arena = self._pair(rng)
        per_param = Adam(reference, lr=3e-3, weight_decay=weight_decay)
        fused = FusedAdam(arena, lr=3e-3, weight_decay=weight_decay)
        for step in range(5):
            for ref, fus in zip(reference, fused_params):
                grad = np.random.default_rng(step).standard_normal(ref.shape)
                ref.grad[...] = grad
                fus.grad[...] = grad
            per_param.step()
            fused.step()
        for ref, fus in zip(reference, fused_params):
            assert np.array_equal(ref.data, fus.data), ref.name

    def test_matches_adamw_bit_for_bit(self, rng):
        reference, fused_params, arena = self._pair(rng)
        per_param = AdamW(reference, lr=1e-2, weight_decay=0.1)
        fused = FusedAdam(arena, lr=1e-2, weight_decay=0.1, decoupled_weight_decay=True)
        for _ in range(4):
            per_param.step()
            fused.step()
        for ref, fus in zip(reference, fused_params):
            assert np.array_equal(ref.data, fus.data), ref.name

    def test_zero_grad_clears_the_arena(self, rng):
        _, fused_params, arena = self._pair(rng)
        optimizer = FusedAdam(arena)
        optimizer.zero_grad()
        assert np.all(arena.grad == 0.0)
        assert all(np.all(p.grad == 0.0) for p in fused_params)

    def test_checkpoint_moment_views_alias_flat_state(self, rng):
        """The per-parameter ``_exp_avg`` views (checkpoint format) write through."""
        _, fused_params, arena = self._pair(rng)
        optimizer = FusedAdam(arena, lr=1e-3)
        optimizer.step()
        views = optimizer._exp_avg
        assert len(views) == len(optimizer.parameters)
        views[0][...] = 123.0
        start, stop = arena.span(optimizer.parameters[0])
        assert np.all(optimizer._exp_avg_flat[start:stop] == 123.0)
        # Shapes match the parameters (what the checkpoint stores per slot).
        for view, parameter in zip(views, optimizer.parameters):
            assert view.shape == parameter.shape

    def test_invalid_hyperparameters_raise(self, rng):
        _, _, arena = self._pair(rng)
        with pytest.raises(ValueError):
            FusedAdam(arena, lr=-1.0)
        with pytest.raises(ValueError):
            FusedAdam(arena, betas=(1.5, 0.9))
