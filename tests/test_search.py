"""Tests for the plan-search capacity-planning service (repro.search).

Covers the PR-10 acceptance criteria: deterministic query expansion, cache-key
stability (any single input field change misses; identical inputs hit with
zero re-evaluations), frontier determinism under worker-pool nondeterministic
completion order, the CLI surface (search + docs cli drift check), and the
GPT-8.3B >= 1000-candidate acceptance query.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cli
from repro.models.gpt_configs import GPT_2_5B
from repro.plan import Boundary, ParallelPlan, Topology
from repro.search import (
    EvaluationPool,
    ObjectiveWeights,
    SearchCache,
    SearchQuery,
    evaluate_task,
    pareto_frontier,
    rank_frontier,
    run_queries,
    run_search,
)
from repro.search.cache import cache_key, task_key_material
from repro.search.frontier import within_budget
from repro.search.query import resolve_cluster
from repro.simulator.evaluate import PlanEvaluation, compression_loss, evaluate_plan


def tiny_query(**overrides) -> SearchQuery:
    """A fast query (tens of candidates) for unit tests."""
    defaults = dict(model="GPT-2.5B", gpus=8, max_candidates=24)
    defaults.update(overrides)
    return SearchQuery(**defaults)


class TestEvaluatePlan:
    def test_metrics_roundtrip_and_sanity(self):
        plan = ParallelPlan.cb_fe_sc(Topology(dp=2, pp=4, tp=1, micro_batches=8))
        evaluation = evaluate_plan(plan, GPT_2_5B)
        assert evaluation.iteration_time_s > 0
        assert evaluation.tokens_per_second > 0
        assert 0 <= evaluation.bubble_fraction < 1
        assert evaluation.wire_bytes_total == pytest.approx(
            evaluation.dp_wire_bytes
            + evaluation.pp_wire_bytes
            + evaluation.embedding_wire_bytes
            + evaluation.tp_wire_bytes
        )
        assert PlanEvaluation.from_dict(evaluation.to_dict()) == evaluation

    def test_evaluation_is_pure(self):
        plan = ParallelPlan.cb(Topology(dp=2, pp=4, tp=1, micro_batches=4))
        assert evaluate_plan(plan, GPT_2_5B) == evaluate_plan(plan, GPT_2_5B)

    def test_compression_loss_monotone(self):
        base = ParallelPlan.baseline()
        assert compression_loss(base) == 0.0
        low_rank = base.with_boundary(Boundary.DP, codec="powersgd", rank=4)
        high_rank = base.with_boundary(Boundary.DP, codec="powersgd", rank=128)
        assert compression_loss(low_rank) > compression_loss(high_rank) > 0.0
        full = high_rank.with_boundary(Boundary.DP, stage_fraction=1.0)
        partial = high_rank.with_boundary(Boundary.DP, stage_fraction=0.5)
        assert compression_loss(partial) < compression_loss(full)
        assert compression_loss(base.with_boundary(Boundary.EMBEDDING, codec="fused")) == 0.0


class TestQueryExpansion:
    def test_expansion_is_deterministic(self):
        query = tiny_query(max_candidates=None)
        first, second = query.expand(), query.expand()
        assert [c.index for c in first] == list(range(len(first)))
        assert [(c.plan, c.tier) for c in first] == [(c.plan, c.tier) for c in second]

    def test_default_gpt83b_query_exceeds_1000_candidates(self):
        assert len(SearchQuery().expand()) >= 1000

    def test_topologies_fill_the_gpu_budget(self):
        query = tiny_query(max_candidates=None)
        for topology in query.topologies():
            assert topology.world_size == query.gpus
            assert topology.pp <= query.model_spec().num_layers

    def test_max_candidates_truncates(self):
        assert len(tiny_query(max_candidates=7).expand()) == 7

    def test_query_roundtrips_through_dict(self):
        query = tiny_query(max_memory_gb=40.0, hardware=("infiniband", "ethernet"))
        assert SearchQuery.from_dict(query.to_dict()) == query

    def test_unknown_fields_and_vocabulary_raise(self):
        with pytest.raises(ValueError, match="unknown query field"):
            SearchQuery.from_dict({"modle": "GPT-2.5B"})
        with pytest.raises(ValueError, match="hardware tier"):
            SearchQuery(hardware=("token-ring",))
        with pytest.raises(ValueError, match="unknown model"):
            SearchQuery(model="GPT-1T")

    def test_custom_model_query(self):
        query = tiny_query(
            custom_model={
                "name": "tiny",
                "num_layers": 8,
                "hidden_size": 256,
                "num_heads": 4,
            }
        )
        assert query.model_spec().name == "tiny"
        assert SearchQuery.from_dict(query.to_dict()) == query

    def test_proxy_scaled_caps_ranks(self):
        query = tiny_query(proxy_scale_max_rank=2, max_candidates=None)
        for candidate in query.expand():
            for boundary in (Boundary.DP, Boundary.PP):
                assert candidate.plan.spec(boundary).rank <= 2


class TestCacheKeys:
    def task(self, **query_overrides):
        query = tiny_query(**query_overrides)
        candidate = query.expand()[-1]  # a compressed candidate, not the baseline
        return query, candidate.task(query)

    def key_of(self, query, task):
        return cache_key(task_key_material(task, resolve_cluster(task["tier"], task["gpus"])))

    def test_same_inputs_same_key(self):
        query, task = self.task()
        query2, task2 = self.task()
        assert self.key_of(query, task) == self.key_of(query2, task2)

    def test_codec_change_misses(self):
        query, task = self.task()
        changed = json.loads(json.dumps(task))
        changed["plan"]["compression"]["dp"]["codec"] = "qsgd"
        assert self.key_of(query, task) != self.key_of(query, changed)

    def test_cap_factor_change_misses(self):
        query, task = self.task()
        changed = json.loads(json.dumps(task))
        changed["plan"]["schedule"]["memory_cap_factor"] = 2.0
        assert self.key_of(query, task) != self.key_of(query, changed)

    def test_hardware_tier_change_misses(self):
        query, task = self.task()
        changed = dict(task, tier="ethernet")
        assert self.key_of(query, task) != self.key_of(query, changed)

    def test_micro_batch_size_change_misses(self):
        query, task = self.task()
        changed = dict(task, micro_batch_size=task["micro_batch_size"] * 2)
        assert self.key_of(query, task) != self.key_of(query, changed)

    def test_cost_model_version_change_misses(self, monkeypatch):
        query, task = self.task()
        before = self.key_of(query, task)
        monkeypatch.setattr("repro.search.cache.COST_MODEL_VERSION", "9999.99-0")
        assert self.key_of(query, task) != before

    def test_canonical_json_is_compact_and_sorted(self):
        plan = ParallelPlan.cb_fe_sc()
        canonical = plan.canonical_json()
        assert "\n" not in canonical and ": " not in canonical
        assert json.loads(canonical) == plan.to_dict()
        assert ParallelPlan.from_dict(json.loads(canonical)) == plan

    def test_cache_store_and_hit(self, tmp_path):
        cache = SearchCache(tmp_path / "cache")
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, {"x": 1.0})
        assert cache.get("ab" * 32) == {"x": 1.0}
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1}

    def test_torn_entry_counts_as_miss(self, tmp_path):
        cache = SearchCache(tmp_path / "cache")
        key = "cd" * 32
        cache.put(key, {"x": 1.0})
        path = cache._path(key)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None


class TestWarmCache:
    def test_second_run_skips_all_evaluations(self, tmp_path):
        query = tiny_query()
        cache = SearchCache(tmp_path / "cache")
        cold = run_search(query, workers=0, cache=cache)
        assert cold.evaluated == cold.candidates and cold.cache_hits == 0
        warm = run_search(query, workers=0, cache=cache)
        assert warm.evaluated == 0
        assert warm.cache_hits == warm.candidates == cold.candidates
        assert warm.to_json() == cold.to_json()

    def test_changed_query_field_reevaluates(self, tmp_path):
        cache = SearchCache(tmp_path / "cache")
        run_search(tiny_query(), workers=0, cache=cache)
        bumped = run_search(tiny_query(micro_batch_size=4), workers=0, cache=cache)
        assert bumped.evaluated == bumped.candidates and bumped.cache_hits == 0


class TestPoolAndDeterminism:
    def test_json_identical_across_pool_sizes(self, tmp_path):
        query = tiny_query(max_candidates=30)
        inline = run_search(query, workers=0)
        pooled = run_search(query, workers=3)
        assert pooled.to_json() == inline.to_json()

    def test_pool_reports_worker_errors(self):
        query = tiny_query(max_candidates=2)
        good = query.expand()[0].task(query)
        bad = json.loads(json.dumps(good))
        bad["plan"]["topology"]["pp"] = -1
        with EvaluationPool(workers=2) as pool:
            results = pool.run([(0, good), (1, bad)])
        assert results[0][0] == "ok"
        assert results[1][0] == "error" and "must be positive" in results[1][1]

    def test_pool_survives_worker_crash(self):
        query = tiny_query(max_candidates=12)
        tasks = [(c.index, c.task(query)) for c in query.expand()]
        with EvaluationPool(workers=2) as pool:
            pool._workers[0].process.terminate()
            pool._workers[0].process.join()
            results = pool.run(tasks)
        assert sorted(results) == [index for index, _ in tasks]
        assert all(kind == "ok" for kind, _ in results.values())

    def test_inline_matches_worker_evaluation(self):
        query = tiny_query(max_candidates=3)
        candidate = query.expand()[-1]
        task = candidate.task(query)
        with EvaluationPool(workers=1) as pool:
            pooled = pool.run([(candidate.index, task)])
        assert pooled[candidate.index] == ("ok", evaluate_task(task))

    def test_run_queries_shares_pool_and_cache(self, tmp_path):
        cache = SearchCache(tmp_path / "cache")
        queries = [tiny_query(), tiny_query()]  # identical: second is all cache hits
        first, second = run_queries(queries, workers=2, cache=cache)
        assert first.evaluated == first.candidates
        assert second.evaluated == 0 and second.cache_hits == second.candidates
        assert first.to_json() == second.to_json()


class TestFrontier:
    def metrics(self, tokens, wire, memory, loss=0.0):
        return {
            "tokens_per_second": tokens,
            "wire_bytes_total": wire,
            "peak_memory_gb": memory,
            "compression_loss": loss,
        }

    def test_dominated_points_are_dropped(self):
        points = [
            (0, self.metrics(100.0, 10.0, 1.0)),
            (1, self.metrics(90.0, 20.0, 2.0)),  # dominated by 0
            (2, self.metrics(80.0, 5.0, 3.0)),  # cheaper wire: survives
        ]
        assert [index for index, _ in pareto_frontier(points)] == [0, 2]

    def test_duplicate_triples_keep_lowest_index(self):
        points = [
            (5, self.metrics(100.0, 10.0, 1.0)),
            (3, self.metrics(100.0, 10.0, 1.0)),
        ]
        assert [index for index, _ in pareto_frontier(points)] == [3]

    def test_ranking_orders_by_weighted_score(self):
        frontier = [
            (0, self.metrics(100.0, 100.0, 1.0)),
            (1, self.metrics(50.0, 10.0, 1.0)),
        ]
        fast_first = rank_frontier(frontier, ObjectiveWeights(throughput=1.0, wire=0.1))
        cheap_first = rank_frontier(frontier, ObjectiveWeights(throughput=0.1, wire=1.0))
        assert [entry.index for entry in fast_first] == [0, 1]
        assert [entry.index for entry in cheap_first] == [1, 0]

    def test_budgets_filter(self):
        metrics = self.metrics(10.0, 1.0, 50.0, loss=0.4)
        assert within_budget(metrics, None, None)
        assert not within_budget(metrics, 40.0, None)
        assert not within_budget(metrics, None, 0.3)

    def test_negative_weights_raise(self):
        with pytest.raises(ValueError, match="non-negative"):
            ObjectiveWeights(throughput=-1.0)


class TestSearchProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        gpus=st.sampled_from([8, 16]),
        micro_batches=st.sampled_from([(4,), (8,), (4, 8)]),
        schedules=st.sampled_from([("1f1b",), ("zb1",), ("1f1b", "zb1")]),
        max_memory_gb=st.sampled_from([None, 40.0, 200.0]),
        max_compression_loss=st.sampled_from([None, 0.2, 0.5]),
        weight_wire=st.sampled_from([0.0, 0.25, 1.0]),
    )
    def test_fuzzed_queries_are_deterministic_and_nondominated(
        self, gpus, micro_batches, schedules, max_memory_gb, max_compression_loss, weight_wire
    ):
        query = SearchQuery(
            model="GPT-2.5B",
            gpus=gpus,
            micro_batches=micro_batches,
            schedules=schedules,
            max_memory_gb=max_memory_gb,
            max_compression_loss=max_compression_loss,
            weight_wire=weight_wire,
            max_candidates=16,
        )
        first = run_search(query, workers=0)
        second = run_search(query, workers=0)
        assert first.to_json() == second.to_json()
        entries = first.entries
        assert len(entries) <= first.within_budget <= first.candidates
        for entry in entries:
            assert within_budget(entry["metrics"], max_memory_gb, max_compression_loss)
        for mine in entries:
            for theirs in entries:
                if mine is theirs:
                    continue
                strictly_better_everywhere = (
                    theirs["metrics"]["tokens_per_second"]
                    > mine["metrics"]["tokens_per_second"]
                    and theirs["metrics"]["wire_bytes_total"]
                    < mine["metrics"]["wire_bytes_total"]
                    and theirs["metrics"]["peak_memory_gb"]
                    < mine["metrics"]["peak_memory_gb"]
                )
                assert not strictly_better_everywhere


class TestSearchCli:
    def run_cli(self, capsys, *argv):
        code = cli.main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_search_json_smoke_and_warm_cache(self, capsys, tmp_path):
        argv = [
            "search", "--model", "GPT-2.5B", "--gpus", "8", "--max-candidates", "20",
            "--workers", "0", "--cache-dir", str(tmp_path / "cache"), "--json",
        ]
        code, cold_out, cold_err = self.run_cli(capsys, *argv)
        assert code == 0
        assert "20 evaluated, 0 cached" in cold_err
        code, warm_out, warm_err = self.run_cli(capsys, *argv)
        assert code == 0
        assert "0 evaluated, 20 cached" in warm_err
        assert warm_out == cold_out  # byte-identical across cold/warm runs
        payload = json.loads(cold_out)
        assert payload["candidates"] == 20
        assert payload["frontier"][0]["rank"] == 1

    def test_search_table_output(self, capsys, tmp_path):
        code, out, _ = self.run_cli(
            capsys,
            "search", "--model", "GPT-2.5B", "--gpus", "8", "--max-candidates", "12",
            "--workers", "0", "--no-cache", "--top", "3",
        )
        assert code == 0
        assert "Pareto-optimal" in out and "Tokens/s" in out

    def test_search_query_file_and_budget(self, capsys, tmp_path):
        query_file = tmp_path / "q.json"
        query_file.write_text(
            json.dumps(
                {"model": "GPT-2.5B", "gpus": 8, "max_candidates": 12, "max_memory_gb": 100.0}
            ),
            encoding="utf-8",
        )
        code, out, _ = self.run_cli(
            capsys,
            "search", "--query", str(query_file), "--workers", "0", "--no-cache", "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["query"]["max_memory_gb"] == 100.0
        for entry in payload["frontier"]:
            assert entry["metrics"]["peak_memory_gb"] <= 100.0

    def test_search_batch_mode(self, capsys, tmp_path):
        batch = tmp_path / "batch.json"
        batch.write_text(
            json.dumps(
                {
                    "queries": [
                        {"model": "GPT-2.5B", "gpus": 8, "max_candidates": 10},
                        {"model": "GPT-2.5B", "gpus": 16, "max_candidates": 10},
                    ]
                }
            ),
            encoding="utf-8",
        )
        code, out, err = self.run_cli(
            capsys,
            "search", "--queries", str(batch), "--workers", "0",
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert code == 0
        assert out.count("Pareto-optimal") == 2
        assert err.count("[search]") == 2

    def test_query_and_queries_are_exclusive(self, capsys):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            cli.main(["search", "--query", "a.json", "--queries", "b.json"])

    def test_invalid_query_file_fails_loudly(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"modle": "GPT-2.5B"}), encoding="utf-8")
        with pytest.raises(SystemExit, match="invalid query file"):
            cli.main(["search", "--query", str(bad)])


class TestDocsCli:
    def test_reference_matches_checked_in_file(self, capsys):
        assert cli.main(["docs", "cli", "--check"]) == 0

    def test_output_writes_rendered_reference(self, capsys, tmp_path):
        target = tmp_path / "CLI.md"
        assert cli.main(["docs", "cli", "--output", str(target)]) == 0
        text = target.read_text(encoding="utf-8")
        assert text.startswith("# `repro` CLI reference")
        for subcommand in ("repro search", "repro docs cli", "repro train", "repro plan diff"):
            assert f"`{subcommand}`" in text

    def test_stale_reference_fails_check(self, capsys, tmp_path):
        target = tmp_path / "CLI.md"
        target.write_text("stale\n", encoding="utf-8")
        with pytest.raises(SystemExit, match="stale"):
            cli.main(["docs", "cli", "--check", "--output", str(target)])


class TestAcceptance:
    def test_gpt83b_query_thousand_candidates_deterministic(self, tmp_path):
        """PR-10 acceptance: >= 1000 candidates, deterministic frontier, warm skip."""
        query = SearchQuery()  # GPT-8.3B on 128 GPUs, default sweep
        cache = SearchCache(tmp_path / "cache")
        cold = run_search(query, workers=4, cache=cache)
        assert cold.candidates >= 1000
        assert cold.errors == 0
        assert cold.evaluated == cold.candidates
        assert cold.entries, "default query must produce a non-empty frontier"
        warm = run_search(query, workers=4, cache=cache)
        assert warm.evaluated == 0 and warm.cache_hits == warm.candidates
        assert warm.to_json() == cold.to_json()
