"""Tests for cluster topology and Megatron-style process grids."""

from __future__ import annotations

import pytest

from repro.parallel.process_groups import ParallelLayout, ProcessGrid
from repro.parallel.topology import PAPER_CLUSTER, ClusterTopology, ethernet_cluster


class TestClusterTopology:
    def test_paper_cluster_dimensions(self):
        assert PAPER_CLUSTER.num_nodes == 16
        assert PAPER_CLUSTER.gpus_per_node == 8
        assert PAPER_CLUSTER.world_size == 128

    def test_device_of_rank(self):
        device = PAPER_CLUSTER.device_of_rank(13)
        assert device.node == 1 and device.local_rank == 5

    def test_rank_out_of_range_raises(self):
        with pytest.raises(ValueError):
            PAPER_CLUSTER.device_of_rank(128)

    def test_same_node_detection(self):
        assert PAPER_CLUSTER.ranks_on_same_node(0, 7)
        assert not PAPER_CLUSTER.ranks_on_same_node(7, 8)

    def test_group_link_selection(self):
        bandwidth, _ = PAPER_CLUSTER.link_for_group([0, 1, 2])
        assert bandwidth == PAPER_CLUSTER.intra_node_bandwidth_gbps
        bandwidth, _ = PAPER_CLUSTER.link_for_group([0, 8])
        assert bandwidth == PAPER_CLUSTER.inter_node_bandwidth_gbps

    def test_ethernet_cluster_is_slower(self):
        assert ethernet_cluster().inter_node_bandwidth_gbps < PAPER_CLUSTER.inter_node_bandwidth_gbps

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            ClusterTopology(num_nodes=0)


class TestParallelLayout:
    def test_paper_layout(self):
        layout = ParallelLayout()
        assert layout.world_size == 128
        assert layout.describe() == "TP8/DP4/PP4"

    def test_invalid_degree_raises(self):
        with pytest.raises(ValueError):
            ParallelLayout(tensor_parallel=0)


class TestProcessGrid:
    @pytest.fixture
    def grid(self) -> ProcessGrid:
        return ProcessGrid(ParallelLayout(), PAPER_CLUSTER)

    def test_rank_round_trip(self, grid):
        for dp in range(4):
            for pp in range(4):
                for tp in range(8):
                    rank = grid.rank_of(dp, pp, tp)
                    coords = grid.coordinates_of(rank)
                    assert (coords.data_parallel, coords.pipeline_stage, coords.tensor_parallel) == (
                        dp,
                        pp,
                        tp,
                    )

    def test_every_rank_appears_once_per_dimension(self, grid):
        for groups in (
            grid.tensor_parallel_groups(),
            grid.pipeline_parallel_groups(),
            grid.data_parallel_groups(),
        ):
            all_ranks = sorted(rank for group in groups for rank in group)
            assert all_ranks == list(range(128))

    def test_group_counts_and_sizes(self, grid):
        assert len(grid.tensor_parallel_groups()) == 16 and all(
            len(g) == 8 for g in grid.tensor_parallel_groups()
        )
        assert len(grid.pipeline_parallel_groups()) == 32 and all(
            len(g) == 4 for g in grid.pipeline_parallel_groups()
        )
        assert len(grid.data_parallel_groups()) == 32 and all(
            len(g) == 4 for g in grid.data_parallel_groups()
        )

    def test_tensor_groups_stay_inside_nodes(self, grid):
        """The Megatron placement invariant the paper relies on (NVLink for TP)."""
        assert grid.tensor_groups_are_intra_node()

    def test_data_parallel_groups_cross_nodes(self, grid):
        assert all(grid.group_spans_nodes(group) for group in grid.data_parallel_groups())

    def test_embedding_groups_connect_first_and_last_stage(self, grid):
        groups = grid.embedding_groups()
        assert len(groups) == 32
        for group in groups:
            coords = [grid.coordinates_of(rank) for rank in group]
            assert {c.pipeline_stage for c in coords} == {0, 3}

    def test_fused_embedding_groups_have_2d_ranks(self, grid):
        groups = grid.fused_embedding_groups()
        assert len(groups) == 8
        assert all(len(group) == 2 * 4 for group in groups)

    def test_single_stage_embedding_group_degenerates(self):
        grid = ProcessGrid(ParallelLayout(tensor_parallel=2, pipeline_parallel=1, data_parallel=2))
        assert all(len(group) == 1 for group in grid.embedding_groups())

    def test_layout_too_large_for_topology_raises(self):
        with pytest.raises(ValueError):
            ProcessGrid(ParallelLayout(), ClusterTopology(num_nodes=2, gpus_per_node=8))

    def test_out_of_range_coordinates_raise(self, grid):
        with pytest.raises(ValueError):
            grid.rank_of(4, 0, 0)
        with pytest.raises(ValueError):
            grid.coordinates_of(128)
