"""Tests for the experiment drivers (fast paths).

The simulator-backed drivers run at full paper scale (they are cheap); the
functional drivers are exercised with a miniature settings object so the whole file
stays fast — the benchmark harness runs them at the proper fast/thorough scales.
"""

from __future__ import annotations

import pytest

from repro.core import OptimusCCConfig
from repro.data import SyntheticCorpusConfig
from repro.experiments.fig10_breakdown import run_fig10
from repro.experiments.fig11_error_independence import run_fig11
from repro.experiments.fig12_memory import run_fig12
from repro.experiments.fig14_config_sensitivity import run_fig14
from repro.experiments.fig15_throughput import run_fig15
from repro.experiments.fig16_scalability import run_fig16
from repro.experiments.quality import (
    clear_quality_cache,
    paper_variant_configurations,
    run_quality_experiment,
    run_quality_suite,
)
from repro.experiments.settings import (
    FunctionalSettings,
    fast_functional_settings,
    paper_job,
    thorough_functional_settings,
)
from repro.models import GPT_2_5B, GPT_8_3B
from repro.models.gpt_configs import functional_config


@pytest.fixture(scope="module")
def mini_settings() -> FunctionalSettings:
    """Miniature functional settings so experiment drivers run in a few seconds."""
    return FunctionalSettings(
        model=functional_config(
            # max sequence length 20 so the zero-shot contexts (16 tokens) fit even
            # though training itself uses 12-token sequences.
            vocab_size=64, sequence_length=20, num_layers=2, hidden_size=16, num_heads=2
        ),
        corpus_config=SyntheticCorpusConfig(vocab_size=64, seed=5),
        num_stages=2,
        data_parallel_degree=2,
        sequence_length=12,
        micro_batch_size=2,
        num_micro_batches=2,
        num_iterations=6,
        validation_interval=3,
        validation_batches=1,
        zero_shot_examples=6,
        cb_rank=2,
        dp_rank=2,
    )


class TestSettings:
    def test_fast_and_thorough_presets_are_consistent(self):
        fast = fast_functional_settings()
        thorough = thorough_functional_settings()
        assert thorough.num_iterations > fast.num_iterations
        assert fast.model.vocab_size == fast.corpus_config.vocab_size
        assert thorough.model.vocab_size == thorough.corpus_config.vocab_size

    def test_paper_job_defaults(self):
        job = paper_job(GPT_8_3B)
        assert job.layout.describe() == "TP8/DP4/PP4"
        assert job.num_micro_batches == 16
        assert job.num_model_chunks == 2

    def test_settings_with_and_cache_key(self):
        settings = fast_functional_settings()
        modified = settings.with_(num_iterations=10)
        assert modified.num_iterations == 10
        assert settings.cache_key() != modified.cache_key()
        assert settings.cache_key() == fast_functional_settings().cache_key()

    def test_loader_construction(self, mini_settings):
        loader = mini_settings.build_loader()
        assert loader.data_parallel_degree == 2
        assert loader.mini_batch_size == 2 * 2 * 2


class TestQualityDriver:
    def test_run_and_cache(self, mini_settings):
        clear_quality_cache()
        first = run_quality_experiment("Baseline", OptimusCCConfig.baseline(), mini_settings)
        assert first.final_validation_perplexity > 1.0
        assert len(first.zero_shot_accuracy) == 5
        # Cached second call returns identical numbers (and is fast).
        second = run_quality_experiment("Baseline-again", OptimusCCConfig.baseline(), mini_settings)
        assert second.final_validation_perplexity == first.final_validation_perplexity
        assert second.label == "Baseline-again"

    def test_suite_covers_paper_variants(self, mini_settings):
        results = run_quality_suite(
            paper_variant_configurations(), mini_settings, evaluate_zero_shot=False
        )
        assert set(results) == {"Baseline", "CB", "CB+FE", "CB+FE+SC"}
        # FE is mathematically exact, so CB and CB+FE produce the same perplexity up
        # to floating-point summation order.
        assert results["CB"].final_validation_perplexity == pytest.approx(
            results["CB+FE"].final_validation_perplexity, rel=1e-3
        )

    def test_fig11_driver_records_diagnostics(self, mini_settings):
        result = run_fig11(settings=mini_settings)
        assert result.num_observations > 0
        assert result.max_abs_cosine <= 1.0
        assert "Fig. 11" in result.render()


class TestSimulatorDrivers:
    def test_fig10(self):
        result = run_fig10(models=[GPT_2_5B])
        assert result.communication_reduction("GPT-2.5B") > 0.3
        assert "Fig. 10" in result.render()

    def test_fig12(self):
        result = run_fig12(models=[GPT_8_3B])
        assert 0.0 < result.row("GPT-8.3B", "CB (LEP)").overhead_over_baseline < 0.2
        assert result.lep_overhead("GPT-8.3B") > 0.0
        assert "Fig. 12" in result.render()

    def test_fig14(self):
        result = run_fig14()
        gains = result.cb_gain_by_depth()
        assert gains[16] > gains[4]
        assert "Fig. 14" in result.render()

    def test_fig15(self):
        result = run_fig15(include_measured_point=False)
        assert result.measured_cpu_point is None
        assert result.min_compress_gbps("GPT-175B") > 0
        assert "Fig. 15" in result.render()

    def test_fig16(self):
        result = run_fig16()
        assert len(result.points) == 4
        assert all(speedup > 0 for speedup in result.full_stack_speedups())
        assert "Fig. 16" in result.render()


class TestScheduleComparison:
    def test_driver_reports_zb1_wins_and_exact_parity(self):
        from repro.experiments.schedule_compare import run_schedule_comparison

        result = run_schedule_comparison(layouts=((2, 2), (4, 2)))
        for (pp, _dp), points in result.sweeps.items():
            assert points["zb1"].bubble_fraction < points["1f1b"].bubble_fraction, pp
            assert points["zb1"].iteration_time_s < points["1f1b"].iteration_time_s
        # The schedules must be numerically identical.
        assert result.functional_weight_delta == 0.0
        rendered = result.render()
        assert "zb1" in rendered and "bit-identical" in rendered
