"""Tests for compressed backpropagation: policy, lazy error propagation, diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import PowerSGDCompressor
from repro.core.compressed_backprop import CompressedBackpropagation
from repro.nn.gpt_stage import build_gpt_stages
from repro.parallel.pipeline_engine import InterStageChannel, PipelineParallelEngine


class TestPolicy:
    def test_epilogue_only_policy(self):
        cb = CompressedBackpropagation(num_stages=4, epilogue_only=True)
        # Receiving stage 0, 8 micro-batches: only the last 3 are compressed.
        assert not cb.should_compress(boundary=0, micro_batch=0, num_micro_batches=8)
        assert cb.should_compress(boundary=0, micro_batch=7, num_micro_batches=8)
        assert cb.should_compress(boundary=0, micro_batch=5, num_micro_batches=8)
        assert not cb.should_compress(boundary=2, micro_batch=5, num_micro_batches=8)

    def test_naive_policy_compresses_everything(self):
        cb = CompressedBackpropagation(num_stages=4, epilogue_only=False)
        assert all(
            cb.should_compress(boundary=b, micro_batch=m, num_micro_batches=8)
            for b in range(3)
            for m in range(8)
        )

    def test_invalid_configuration_raises(self):
        with pytest.raises(ValueError):
            CompressedBackpropagation(num_stages=0)
        with pytest.raises(ValueError):
            CompressedBackpropagation(num_stages=2, compressor="unknown")


class TestHookBehaviour:
    def test_uncompressed_transfer_passes_through(self, rng):
        cb = CompressedBackpropagation(num_stages=4, epilogue_only=True)
        gradient = rng.normal(size=(2, 4, 8))
        delivered, payload_bytes, compressed = cb(gradient, 0, 0, 8)
        assert np.array_equal(delivered, gradient)
        assert not compressed
        assert payload_bytes == gradient.size * 2

    def test_compressed_transfer_shrinks_payload(self, rng):
        cb = CompressedBackpropagation(num_stages=2, rank=2, epilogue_only=False)
        gradient = rng.normal(size=(4, 16, 32))
        delivered, payload_bytes, compressed = cb(gradient, 0, 0, 4)
        assert compressed
        assert payload_bytes < gradient.size * 2
        assert delivered.shape == gradient.shape

    def test_events_and_summary(self, rng):
        cb = CompressedBackpropagation(num_stages=4, rank=2, epilogue_only=True)
        for micro_batch in range(8):
            cb(rng.normal(size=(2, 8, 16)), 0, micro_batch, 8)
        summary = cb.compression_summary()
        assert summary["transfers"] == 8
        assert summary["compressed_transfers"] == 3
        assert 0 < summary["bytes_saved_fraction"] < 1

    def test_empty_summary(self):
        summary = CompressedBackpropagation(num_stages=2).compression_summary()
        assert summary["transfers"] == 0

    def test_topk_variant(self, rng):
        cb = CompressedBackpropagation(
            num_stages=2, epilogue_only=False, compressor="topk", topk_fraction=0.05
        )
        gradient = rng.normal(size=(2, 8, 16))
        delivered, payload_bytes, compressed = cb(gradient, 0, 0, 2)
        assert compressed
        assert np.count_nonzero(delivered) <= int(0.05 * gradient.size) + 1

    def test_custom_compressor_instance(self, rng):
        cb = CompressedBackpropagation(
            num_stages=2,
            epilogue_only=False,
            compressor=PowerSGDCompressor(rank=1, min_compression_elements=0),
        )
        _, _, compressed = cb(rng.normal(size=(2, 8, 16)), 0, 0, 2)
        assert compressed

    def test_reset_clears_state(self, rng):
        cb = CompressedBackpropagation(num_stages=2, epilogue_only=False, collect_diagnostics=True)
        cb(rng.normal(size=(2, 8, 16)), 0, 0, 2)
        cb(rng.normal(size=(2, 8, 16)), 0, 1, 2)
        assert cb.events and cb.residual_memory_bytes() > 0
        cb.reset()
        assert not cb.events and cb.residual_memory_bytes() == 0


class TestLazyErrorPropagation:
    def test_residual_carried_to_next_micro_batch(self, rng):
        """The running sum of delivered gradients tracks the true sum (per boundary)."""
        cb = CompressedBackpropagation(num_stages=2, rank=1, epilogue_only=False)
        true_sum = np.zeros((4, 8, 16))
        delivered_sum = np.zeros((4, 8, 16))
        for micro_batch in range(12):
            gradient = rng.normal(size=(4, 8, 16))
            true_sum += gradient
            delivered, _, _ = cb(gradient, 0, micro_batch, 12)
            delivered_sum += delivered
        residual = cb.feedback.residual("boundary0").reshape(true_sum.shape[0] * true_sum.shape[1], -1)
        assert np.allclose(
            delivered_sum.reshape(residual.shape[0], -1) + residual,
            true_sum.reshape(residual.shape[0], -1),
            atol=1e-8,
        )

    def test_non_lep_keeps_no_residual(self, rng):
        cb = CompressedBackpropagation(
            num_stages=2, rank=1, epilogue_only=False, lazy_error_propagation=False
        )
        cb(rng.normal(size=(2, 8, 16)), 0, 0, 4)
        assert cb.residual_memory_bytes() == 0

    def test_lep_reduces_accumulated_gradient_error(self, rng):
        """Over a mini-batch, LEP yields a more accurate gradient sum than non-LEP."""
        shape = (4, 8, 16)
        gradients = [rng.normal(size=shape) for _ in range(16)]
        true_sum = np.sum(gradients, axis=0)

        def accumulated(lep: bool) -> np.ndarray:
            cb = CompressedBackpropagation(
                num_stages=2, rank=1, epilogue_only=False, lazy_error_propagation=lep
            )
            return np.sum(
                [cb(gradient, 0, index, 16)[0] for index, gradient in enumerate(gradients)], axis=0
            )

        error_lep = np.linalg.norm(accumulated(True) - true_sum)
        error_non_lep = np.linalg.norm(accumulated(False) - true_sum)
        assert error_lep < error_non_lep


class TestDiagnostics:
    def test_fig11_statistics_are_near_zero(self, rng):
        """Errors and activation differences are small-mean and near-orthogonal."""
        cb = CompressedBackpropagation(
            num_stages=2, rank=4, epilogue_only=False, collect_diagnostics=True
        )
        for micro_batch in range(10):
            cb(rng.normal(size=(4, 8, 32)), 0, micro_batch, 10)
        assert len(cb.diagnostics) == 9  # needs a previous tensor
        cosines = [abs(record.cosine) for record in cb.diagnostics]
        # On synthetic Gaussian tensors the statistic is noisier than on real
        # training gradients (Fig. 11), but it must stay far from +/-1.
        assert np.mean(cosines) < 0.6
        assert abs(np.mean([record.error_mean for record in cb.diagnostics])) < 0.05
        assert abs(np.mean([record.activation_diff_mean for record in cb.diagnostics])) < 0.05


class TestEndToEndQualityEffect:
    def test_lossless_when_rank_covers_tensor(self, tiny_config, rng):
        """With a rank at least the hidden size, CB is exact and gradients match."""
        tokens = rng.integers(0, tiny_config.vocab_size, size=(2, 8))
        targets = rng.integers(0, tiny_config.vocab_size, size=(2, 8))

        reference = PipelineParallelEngine(build_gpt_stages(tiny_config, 2, seed=1))
        reference.run_iteration([(tokens, targets)])

        cb = CompressedBackpropagation(
            num_stages=2, rank=tiny_config.hidden_size, epilogue_only=False
        )
        compressed_engine = PipelineParallelEngine(
            build_gpt_stages(tiny_config, 2, seed=1),
            InterStageChannel(backward_hook=cb),
        )
        compressed_engine.run_iteration([(tokens, targets)])

        for ref_param, cmp_param in zip(reference.parameters(), compressed_engine.parameters()):
            assert np.allclose(ref_param.grad, cmp_param.grad, atol=1e-6)
